//! Declarative experiment specs: one knob registry, one sweep engine.
//!
//! Historically every sweep was a bespoke struct + hand-rolled grid loop,
//! and `ndpsim` re-implemented ~30 `--flag` parsers that had to be kept
//! in sync with [`SimConfig`] by hand. This module replaces all of that
//! with three pieces:
//!
//! * **[`KNOBS`]** — a registry with one entry per [`SimConfig`]
//!   parameter, carrying the canonical knob name, the `ndpsim` CLI flag
//!   (if any), help text, and `apply`/`get` functions. It is the single
//!   source of truth consumed by `ndpsim` flag parsing, spec files and
//!   [`config_fingerprint`]; unknown-knob errors and `--help` text
//!   derive from the same table.
//! * **[`SweepSpec`]** — a base [`SimConfig`] plus [`Axis`] lists whose
//!   cross product [`SweepSpec::expand`]s into a deterministic,
//!   seed-stable grid of configs (row-major: the first axis varies
//!   slowest, the last fastest — matching the legacy sweeps' nesting).
//!   Axes are either one knob × values, or *paired* points that set
//!   several knobs together (e.g. `mlp_window` with matching
//!   `mshrs_per_core`). Specs load from JSON ([`SweepSpec::from_json`]).
//! * **[`run_sweep`]** — the one generic engine: expands the grid, fans
//!   the configs out over the work-stealing parallel driver
//!   ([`crate::parallel`]), and returns a [`SweepResult`] with
//!   paired-row grouping and geomean helpers. [`run_sweep_jsonl`] is the
//!   same engine with **incremental JSONL output**: each completed grid
//!   point is appended (in grid order) as soon as every earlier point
//!   has retired, and `resume` skips points whose config fingerprint is
//!   already on disk — an interrupted sweep resumed produces a file
//!   byte-for-byte equal to an uninterrupted run.
//!
//! The legacy sweep functions in [`crate::sweeps`] are thin wrappers
//! that build a spec and project typed rows; their outputs are
//! bit-identical to the hand-rolled loops they replaced (asserted by
//! `tests/spec_api.rs`).

use crate::config::{InclusionPolicy, SimConfig, SystemKind};
use crate::fault::FaultPlan;
use crate::machine::Machine;
use crate::parallel::{par_map, par_map_sink};
use crate::report::RunReport;
use crate::shard::{self, ShardSpec};
use ndp_types::stats::geomean;
use ndp_types::Cycles;
use ndp_workloads::WorkloadId;
use ndpage::bypass::BypassPolicy;
use ndpage::Mechanism;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error from spec parsing, knob application or sweep execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Canonical name parsers (shared by the registry and the CLI layer).
// ---------------------------------------------------------------------------

/// Parses a mechanism name, tolerating case and `-`/`_`/space
/// (`"huge-page"`, `"NDPage"`, `"radix"` all resolve).
#[must_use]
pub fn parse_mechanism(s: &str) -> Option<Mechanism> {
    Mechanism::ALL.into_iter().find(|m| {
        m.name()
            .replace(' ', "")
            .eq_ignore_ascii_case(&s.replace(['-', '_', ' '], ""))
    })
}

/// Parses a workload name (case-insensitive Table II short name).
#[must_use]
pub fn parse_workload(s: &str) -> Option<WorkloadId> {
    WorkloadId::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(s))
}

/// Canonical (lower-case, space-stripped) mechanism value names.
#[must_use]
pub fn mechanism_names() -> Vec<String> {
    Mechanism::ALL
        .iter()
        .map(|m| m.name().replace(' ', "").to_lowercase())
        .collect()
}

/// Canonical workload value names.
#[must_use]
pub fn workload_names() -> Vec<String> {
    WorkloadId::ALL
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

fn unrecognized(got: &str, valid: &[String]) -> String {
    format!(
        "unrecognized value {got:?}; valid values: {}",
        valid.join(", ")
    )
}

fn p_system(s: &str) -> Result<SystemKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "ndp" => Ok(SystemKind::Ndp),
        "cpu" => Ok(SystemKind::Cpu),
        _ => Err(unrecognized(s, &["ndp".into(), "cpu".into()])),
    }
}

fn p_mechanism(s: &str) -> Result<Mechanism, String> {
    parse_mechanism(s).ok_or_else(|| unrecognized(s, &mechanism_names()))
}

fn p_workload(s: &str) -> Result<WorkloadId, String> {
    parse_workload(s).ok_or_else(|| unrecognized(s, &workload_names()))
}

fn p_policy(s: &str) -> Result<InclusionPolicy, String> {
    InclusionPolicy::parse(s).ok_or_else(|| {
        let valid: Vec<String> = InclusionPolicy::ALL
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        unrecognized(s, &valid)
    })
}

fn p_u64(s: &str) -> Result<u64, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("expects a non-negative integer, got {s:?}"))
}

fn p_u32(s: &str) -> Result<u32, String> {
    let n = p_u64(s)?;
    u32::try_from(n).map_err(|_| format!("value {n} exceeds {}", u32::MAX))
}

fn p_bool(s: &str) -> Result<bool, String> {
    match s.to_ascii_lowercase().as_str() {
        "true" | "on" | "1" | "yes" => Ok(true),
        "false" | "off" | "0" | "no" => Ok(false),
        _ => Err(format!("expects true or false, got {s:?}")),
    }
}

/// `"default"` clears an optional knob back to `None`.
fn p_opt<T>(s: &str, f: impl Fn(&str) -> Result<T, String>) -> Result<Option<T>, String> {
    if s.eq_ignore_ascii_case("default") {
        Ok(None)
    } else {
        f(s).map(Some)
    }
}

fn opt_str<T: fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "default".to_string(), |x| x.to_string())
}

// ---------------------------------------------------------------------------
// The knob registry.
// ---------------------------------------------------------------------------

/// One registered [`SimConfig`] parameter: the single source of truth for
/// its spec-file name, `ndpsim` flag, help text, parsing and
/// serialization.
pub struct KnobDef {
    /// Canonical knob name used in spec files and `--set` overrides
    /// (matches the `SimConfig` field name).
    pub name: &'static str,
    /// The `ndpsim` CLI flag bound to this knob, if any.
    pub flag: Option<&'static str>,
    /// Multiplier applied to a numeric *flag* value before
    /// [`Self::apply`] — `--footprint-mb` scales MiB to the knob's bytes.
    /// Always 1 for direct knob values.
    pub flag_scale: u64,
    /// One-line help text (printed by `ndpsim --help` / `sweep --help`).
    pub help: &'static str,
    /// Parses `value` and stores it in the config. The error names the
    /// constraint and echoes the offending value, but not the knob — the
    /// caller prefixes the knob or flag name.
    pub apply: fn(&mut SimConfig, &str) -> Result<(), String>,
    /// Reads the knob's current value back as its canonical string —
    /// `apply(get(cfg))` is an identity for every knob.
    pub get: fn(&SimConfig) -> String,
}

impl fmt::Debug for KnobDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnobDef")
            .field("name", &self.name)
            .field("flag", &self.flag)
            .finish_non_exhaustive()
    }
}

/// Every [`SimConfig`] parameter, registered exactly once, in field
/// order. Flag application order follows table order.
pub static KNOBS: &[KnobDef] = &[
    KnobDef {
        name: "system",
        flag: Some("--system"),
        flag_scale: 1,
        help: "Table I system flavour: ndp | cpu",
        apply: |c, v| {
            c.system = p_system(v)?;
            Ok(())
        },
        get: |c| match c.system {
            SystemKind::Ndp => "ndp".into(),
            SystemKind::Cpu => "cpu".into(),
        },
    },
    KnobDef {
        name: "cores",
        flag: Some("--cores"),
        flag_scale: 1,
        help: "core count (1..=64)",
        apply: |c, v| {
            c.cores = p_u32(v)?;
            Ok(())
        },
        get: |c| c.cores.to_string(),
    },
    KnobDef {
        name: "mechanism",
        flag: Some("--mechanism"),
        flag_scale: 1,
        help: "translation mechanism: radix | ech | hugepage | ndpage | ideal",
        apply: |c, v| {
            c.mechanism = p_mechanism(v)?;
            Ok(())
        },
        get: |c| c.mechanism.name().replace(' ', "").to_lowercase(),
    },
    KnobDef {
        name: "workload",
        flag: Some("--workload"),
        flag_scale: 1,
        help: "Table II workload: BC|BFS|CC|GC|PR|TC|SP|XS|RND|DLRM|GEN",
        apply: |c, v| {
            c.workload = p_workload(v)?;
            Ok(())
        },
        get: |c| c.workload.name().to_string(),
    },
    KnobDef {
        name: "warmup_ops",
        flag: Some("--warmup"),
        flag_scale: 1,
        help: "untimed warmup ops per core",
        apply: |c, v| {
            c.warmup_ops = p_u64(v)?;
            Ok(())
        },
        get: |c| c.warmup_ops.to_string(),
    },
    KnobDef {
        name: "measure_ops",
        flag: Some("--ops"),
        flag_scale: 1,
        help: "measured ops per core",
        apply: |c, v| {
            c.measure_ops = p_u64(v)?;
            Ok(())
        },
        get: |c| c.measure_ops.to_string(),
    },
    KnobDef {
        name: "footprint_divisor",
        flag: None,
        flag_scale: 1,
        help: "per-core footprint = Table II size / divisor",
        apply: |c, v| {
            c.footprint_divisor = p_u64(v)?;
            Ok(())
        },
        get: |c| c.footprint_divisor.to_string(),
    },
    KnobDef {
        name: "footprint",
        flag: Some("--footprint-mb"),
        flag_scale: 1 << 20,
        help: "absolute per-core footprint in bytes, or 'default' (Table II / divisor); the flag takes MiB",
        apply: |c, v| {
            c.footprint_override = p_opt(v, p_u64)?;
            Ok(())
        },
        get: |c| opt_str(c.footprint_override),
    },
    KnobDef {
        name: "seed",
        flag: Some("--seed"),
        flag_scale: 1,
        help: "base RNG seed (core i uses seed + i)",
        apply: |c, v| {
            c.seed = p_u64(v)?;
            Ok(())
        },
        get: |c| c.seed.to_string(),
    },
    KnobDef {
        name: "fault_minor_4k",
        flag: None,
        flag_scale: 1,
        help: "OS cycles per 4 KB minor fault",
        apply: |c, v| {
            c.fault_minor_4k = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.fault_minor_4k.as_u64().to_string(),
    },
    KnobDef {
        name: "fault_minor_2m",
        flag: None,
        flag_scale: 1,
        help: "OS cycles per 2 MB minor fault",
        apply: |c, v| {
            c.fault_minor_2m = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.fault_minor_2m.as_u64().to_string(),
    },
    KnobDef {
        name: "fault_fallback",
        flag: None,
        flag_scale: 1,
        help: "OS cycles per failed-THP fallback fault",
        apply: |c, v| {
            c.fault_fallback = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.fault_fallback.as_u64().to_string(),
    },
    KnobDef {
        name: "rehash_entry_cost",
        flag: None,
        flag_scale: 1,
        help: "OS cycles per PTE moved by an elastic-cuckoo rehash",
        apply: |c, v| {
            c.rehash_entry_cost = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.rehash_entry_cost.as_u64().to_string(),
    },
    KnobDef {
        name: "pwc",
        flag: None,
        flag_scale: 1,
        help: "page-walk caches: default (per mechanism) | on | off",
        apply: |c, v| {
            c.pwc_override = p_opt(v, p_bool)?;
            Ok(())
        },
        get: |c| match c.pwc_override {
            None => "default".into(),
            Some(true) => "on".into(),
            Some(false) => "off".into(),
        },
    },
    KnobDef {
        name: "bypass",
        flag: None,
        flag_scale: 1,
        help: "L1 bypass policy: default (per mechanism) | none | metadata-l1",
        apply: |c, v| {
            c.bypass_override = match v.to_ascii_lowercase().as_str() {
                "default" => None,
                "none" => Some(BypassPolicy::None),
                "metadata-l1" => Some(BypassPolicy::MetadataL1Bypass),
                _ => {
                    return Err(unrecognized(
                        v,
                        &["default".into(), "none".into(), "metadata-l1".into()],
                    ))
                }
            };
            Ok(())
        },
        get: |c| match c.bypass_override {
            None => "default".into(),
            Some(BypassPolicy::None) => "none".into(),
            Some(BypassPolicy::MetadataL1Bypass) => "metadata-l1".into(),
        },
    },
    KnobDef {
        name: "memory_capacity",
        flag: None,
        flag_scale: 1,
        help: "physical-memory bytes, or 'default' (Table I 16 GB)",
        apply: |c, v| {
            c.memory_capacity_override = p_opt(v, p_u64)?;
            Ok(())
        },
        get: |c| opt_str(c.memory_capacity_override),
    },
    KnobDef {
        name: "pwc_entries",
        flag: Some("--pwc-entries"),
        flag_scale: 1,
        help: "entries per PWC level, or 'default' (64)",
        apply: |c, v| {
            c.pwc_entries = p_opt(v, |s| p_u64(s).map(|n| n as usize))?;
            Ok(())
        },
        get: |c| opt_str(c.pwc_entries),
    },
    KnobDef {
        name: "tlb_l2_entries",
        flag: Some("--tlb-l2"),
        flag_scale: 1,
        help: "L2 TLB entries (12-way power-of-two sets), or 'default' (1536)",
        apply: |c, v| {
            c.tlb_l2_entries = p_opt(v, p_u32)?;
            Ok(())
        },
        get: |c| opt_str(c.tlb_l2_entries),
    },
    KnobDef {
        name: "tlb_fracture_huge",
        flag: None,
        flag_scale: 1,
        help: "fracture 2 MB TLB entries: default (fractured) | true | false",
        apply: |c, v| {
            c.tlb_fracture_huge = p_opt(v, p_bool)?;
            Ok(())
        },
        get: |c| opt_str(c.tlb_fracture_huge),
    },
    KnobDef {
        name: "compaction_tax",
        flag: None,
        flag_scale: 1,
        help: "compaction-interference cycles per period, scaled by THP pressure",
        apply: |c, v| {
            c.compaction_tax = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.compaction_tax.as_u64().to_string(),
    },
    KnobDef {
        name: "procs_per_core",
        flag: Some("--procs"),
        flag_scale: 1,
        help: "multiprogrammed processes per core (1 = paper setup)",
        apply: |c, v| {
            c.procs_per_core = p_u32(v)?;
            Ok(())
        },
        get: |c| c.procs_per_core.to_string(),
    },
    KnobDef {
        name: "context_switch_quantum_ops",
        flag: Some("--quantum"),
        flag_scale: 1,
        help: "ops per scheduling timeslice",
        apply: |c, v| {
            c.context_switch_quantum_ops = p_u64(v)?;
            Ok(())
        },
        get: |c| c.context_switch_quantum_ops.to_string(),
    },
    KnobDef {
        name: "context_switch_cost",
        flag: Some("--switch-cost"),
        flag_scale: 1,
        help: "OS cycles charged per context switch",
        apply: |c, v| {
            c.context_switch_cost = Cycles::new(p_u64(v)?);
            Ok(())
        },
        get: |c| c.context_switch_cost.as_u64().to_string(),
    },
    KnobDef {
        name: "tlb_tagging",
        flag: None,
        flag_scale: 1,
        help: "ASID-tagged TLBs/PWCs: true | false (false = full flush per switch; ndpsim: --no-asid)",
        apply: |c, v| {
            c.tlb_tagging = p_bool(v)?;
            Ok(())
        },
        get: |c| c.tlb_tagging.to_string(),
    },
    KnobDef {
        name: "mlp_window",
        flag: Some("--window"),
        flag_scale: 1,
        help: "per-core issue window (1 = blocking core)",
        apply: |c, v| {
            c.mlp_window = p_u32(v)?;
            Ok(())
        },
        get: |c| c.mlp_window.to_string(),
    },
    KnobDef {
        name: "mshrs_per_core",
        flag: Some("--mshrs"),
        flag_scale: 1,
        help: "miss-status holding registers per core",
        apply: |c, v| {
            c.mshrs_per_core = p_u32(v)?;
            Ok(())
        },
        get: |c| c.mshrs_per_core.to_string(),
    },
    KnobDef {
        name: "walkers_per_core",
        flag: Some("--walkers"),
        flag_scale: 1,
        help: "hardware page-table walkers per core",
        apply: |c, v| {
            c.walkers_per_core = p_u32(v)?;
            Ok(())
        },
        get: |c| c.walkers_per_core.to_string(),
    },
    KnobDef {
        name: "l3_kb",
        flag: Some("--l3-kb"),
        flag_scale: 1,
        help: "shared banked L3 capacity in KB (0 = off)",
        apply: |c, v| {
            c.l3_kb = p_u32(v)?;
            Ok(())
        },
        get: |c| c.l3_kb.to_string(),
    },
    KnobDef {
        name: "l3_ways",
        flag: Some("--l3-ways"),
        flag_scale: 1,
        help: "shared-L3 associativity (inert while l3_kb = 0)",
        apply: |c, v| {
            c.l3_ways = p_u32(v)?;
            Ok(())
        },
        get: |c| c.l3_ways.to_string(),
    },
    KnobDef {
        name: "l3_banks",
        flag: Some("--l3-banks"),
        flag_scale: 1,
        help: "shared-L3 bank count (inert while l3_kb = 0)",
        apply: |c, v| {
            c.l3_banks = p_u32(v)?;
            Ok(())
        },
        get: |c| c.l3_banks.to_string(),
    },
    KnobDef {
        name: "l3_policy",
        flag: Some("--l3-policy"),
        flag_scale: 1,
        help: "shared-L3 inclusion policy: inclusive | exclusive",
        apply: |c, v| {
            c.l3_policy = p_policy(v)?;
            Ok(())
        },
        get: |c| c.l3_policy.name().to_string(),
    },
    KnobDef {
        name: "vault_buffer_kb",
        flag: Some("--vault-kb"),
        flag_scale: 1,
        help: "per-vault memory-side buffer in KB (0 = off)",
        apply: |c, v| {
            c.vault_buffer_kb = p_u32(v)?;
            Ok(())
        },
        get: |c| c.vault_buffer_kb.to_string(),
    },
    KnobDef {
        name: "epoch_ops",
        flag: Some("--epoch"),
        flag_scale: 1,
        help: "ops per scheduler pick (timing-inert batching; 1 = per-op)",
        apply: |c, v| {
            c.epoch_ops = p_u64(v)?;
            Ok(())
        },
        get: |c| c.epoch_ops.to_string(),
    },
];

/// Looks a knob up by canonical name.
#[must_use]
pub fn knob(name: &str) -> Option<&'static KnobDef> {
    KNOBS.iter().find(|k| k.name == name)
}

/// Every registered knob name, in registry order.
#[must_use]
pub fn knob_names() -> Vec<String> {
    KNOBS.iter().map(|k| k.name.to_string()).collect()
}

/// Applies `name = value` to a config.
///
/// # Errors
///
/// Unknown names error listing every valid knob; bad values error with
/// the knob's constraint and the offending value.
pub fn apply_knob(cfg: &mut SimConfig, name: &str, value: &str) -> Result<(), SpecError> {
    let k = knob(name).ok_or_else(|| {
        SpecError::new(format!(
            "unknown knob {name:?}; valid knobs: {}",
            knob_names().join(", ")
        ))
    })?;
    (k.apply)(cfg, value).map_err(|e| SpecError::new(format!("knob {name}: {e}")))
}

/// Serializes a config as its full `(knob, value)` list, in registry
/// order. Applying the list to any config reproduces `cfg` exactly.
#[must_use]
pub fn config_knobs(cfg: &SimConfig) -> Vec<(&'static str, String)> {
    KNOBS.iter().map(|k| (k.name, (k.get)(cfg))).collect()
}

/// A deterministic fingerprint of a configuration: the hash of every
/// registered knob's canonical value. Stable across processes (fixed-seed
/// [`ndp_types::FastHasher`]); the resume key of [`run_sweep_jsonl`].
#[must_use]
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    use core::hash::{Hash, Hasher};
    let mut h = ndp_types::FastHasher::default();
    for k in KNOBS {
        k.name.hash(&mut h);
        (k.get)(cfg).hash(&mut h);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Minimal JSON (the workspace deliberately vendors no serde).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their source text so 64-bit seeds
/// and fingerprints never round-trip through an `f64`.
///
/// Public because the experiment service speaks newline-delimited JSON
/// through this same parser — the workspace deliberately vendors no
/// serde, and one parser means the protocol and the spec files can
/// never disagree about what a value is.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Raw number text, e.g. `"4096"`.
    Num(String),
    /// String contents (unescaped).
    Str(String),
    /// Array elements in order.
    Arr(Vec<Json>),
    /// Key order is preserved — knob application order matters.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Coerces a scalar to the knob-value string it denotes.
    #[must_use]
    pub fn scalar(&self) -> Option<String> {
        match self {
            Json::Num(s) => Some(s.clone()),
            Json::Str(s) => Some(s.clone()),
            Json::Bool(b) => Some(b.to_string()),
            _ => None,
        }
    }

    /// Looks a key up in an object value (`None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value back to compact single-line JSON. Numbers keep
    /// their original source text, so a parse → render round trip is
    /// lossless for 64-bit integers; strings are re-escaped.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(raw) => raw.clone(),
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        // Accumulate raw bytes and convert once: byte-at-a-time
        // `as char` would mangle multi-byte UTF-8 into mojibake.
        let mut out = Vec::new();
        while self.i < self.b.len() {
            let c = self.b[self.i];
            self.i += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8 in string"))
                }
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    out.push(match e {
                        b'"' => b'"',
                        b'\\' => b'\\',
                        b'/' => b'/',
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        _ => return Err(self.err("unsupported escape")),
                    });
                }
                _ => out.push(c),
            }
        }
        Err(self.err("unterminated string"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            c if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(
                        self.b[self.i],
                        b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
                    )
                {
                    self.i += 1;
                }
                Ok(Json::Num(
                    std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("invalid number"))?
                        .to_string(),
                ))
            }
            _ => Err(self.err("unexpected character")),
        }
    }
}

/// Parses one JSON document (the whole input; trailing content is an
/// error). The workspace's one JSON entry point — spec files, JSONL
/// rows, and the experiment-service protocol all come through here.
///
/// # Errors
///
/// Malformed JSON, with the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// SweepSpec: base + axes -> deterministic grid.
// ---------------------------------------------------------------------------

/// The `(knob, value)` assignments identifying one grid point.
pub type Coords = Vec<(String, String)>;

/// One value of an [`Axis`]: the knob assignments applied together when
/// the axis selects this point. Single-knob axes have one assignment per
/// point; paired axes (e.g. `mlp_window` with matching `mshrs_per_core`)
/// have several.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisPoint {
    /// `(knob, value)` assignments, applied in order.
    pub sets: Vec<(String, String)>,
}

/// One grid dimension of a [`SweepSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// The points this axis ranges over.
    pub points: Vec<AxisPoint>,
}

/// Comparison operator of a [`FilterClause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// `=` / `==` (numeric when both sides parse, else string equality).
    Eq,
    /// `!=` (complement of [`FilterOp::Eq`]).
    Ne,
    /// `<` (numeric only).
    Lt,
    /// `<=` (numeric only).
    Le,
    /// `>` (numeric only).
    Gt,
    /// `>=` (numeric only).
    Ge,
}

impl FilterOp {
    fn parse(s: &str) -> Option<FilterOp> {
        match s {
            "=" | "==" => Some(FilterOp::Eq),
            "!=" => Some(FilterOp::Ne),
            "<" => Some(FilterOp::Lt),
            "<=" => Some(FilterOp::Le),
            ">" => Some(FilterOp::Gt),
            ">=" => Some(FilterOp::Ge),
            _ => None,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            FilterOp::Eq => "=",
            FilterOp::Ne => "!=",
            FilterOp::Lt => "<",
            FilterOp::Le => "<=",
            FilterOp::Gt => ">",
            FilterOp::Ge => ">=",
        }
    }
}

/// One conjunctive constraint on grid expansion: `knob OP value`.
/// A grid point is kept only when **every** clause holds; the knob's
/// value at a point is its axis coordinate when the knob varies, or
/// its base value otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterClause {
    /// Registered knob name the clause constrains.
    pub knob: String,
    /// Comparison operator.
    pub op: FilterOp,
    /// Right-hand side, in knob-value syntax.
    pub value: String,
}

impl fmt::Display for FilterClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.knob, self.op.symbol(), self.value)
    }
}

impl FilterClause {
    /// Parses `knob OP value` (whitespace-separated, e.g.
    /// `"pwc_entries >= 64"`). The knob must be registered; an unknown
    /// name errors with the registry list.
    ///
    /// # Errors
    ///
    /// Malformed clause syntax, an unknown operator, or an
    /// unregistered knob name.
    pub fn parse(text: &str) -> Result<FilterClause, SpecError> {
        let mut parts = text.split_whitespace();
        let (Some(name), Some(op_raw), Some(value), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(SpecError::new(format!(
                "filter clause {text:?} must be `knob OP value` \
                 (OP in =, !=, <, <=, >, >=)"
            )));
        };
        let Some(op) = FilterOp::parse(op_raw) else {
            return Err(SpecError::new(format!(
                "filter clause {text:?}: unknown operator {op_raw:?} \
                 (valid: =, !=, <, <=, >, >=)"
            )));
        };
        if knob(name).is_none() {
            return Err(SpecError::new(format!(
                "filter clause {text:?}: {}",
                unrecognized(name, &knob_names())
            )));
        }
        Ok(FilterClause {
            knob: name.to_string(),
            op,
            value: value.to_string(),
        })
    }

    /// Whether the clause holds for `actual` (the point's value of the
    /// clause's knob). Equality compares numerically when both sides
    /// parse as numbers (so `16 = 16.0` and `16 = 016` hold), falling
    /// back to string comparison; ordering operators require numbers.
    ///
    /// # Errors
    ///
    /// An ordering operator over a non-numeric value.
    pub fn holds(&self, actual: &str) -> Result<bool, SpecError> {
        let nums = (actual.parse::<f64>().ok(), self.value.parse::<f64>().ok());
        match self.op {
            FilterOp::Eq | FilterOp::Ne => {
                let eq = match nums {
                    (Some(a), Some(b)) => a == b,
                    _ => actual == self.value,
                };
                Ok(eq == (self.op == FilterOp::Eq))
            }
            _ => {
                let (Some(a), Some(b)) = nums else {
                    return Err(SpecError::new(format!(
                        "filter clause \"{self}\": operator {} needs numeric \
                         values, got {actual:?} {} {:?}",
                        self.op.symbol(),
                        self.op.symbol(),
                        self.value
                    )));
                };
                Ok(match self.op {
                    FilterOp::Lt => a < b,
                    FilterOp::Le => a <= b,
                    FilterOp::Gt => a > b,
                    // Eq/Ne returned above; only Ge remains.
                    _ => a >= b,
                })
            }
        }
    }
}

/// A declarative sweep: a base configuration plus axes whose cross
/// product forms the grid. Expansion is row-major — the **first axis
/// varies slowest**, the last fastest — and deterministic. Optional
/// [`FilterClause`]s prune the cross product during expansion: the
/// kept points are re-indexed compactly (grid indices `0..len` with no
/// holes), so filtered grids shard, stream and resume exactly like
/// dense ones — the emit order is a deterministic function of the
/// spec, and a filter edit changes config fingerprints' positions,
/// which the resume path already treats as "re-run that point".
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Display name (JSONL metadata only; no semantic weight).
    pub name: String,
    /// The configuration every grid point starts from.
    pub base: SimConfig,
    /// Grid dimensions, slowest-varying first.
    pub axes: Vec<Axis>,
    /// Conjunctive constraint clauses applied during expansion
    /// (empty = keep the full cross product).
    pub filters: Vec<FilterClause>,
}

impl SweepSpec {
    /// A spec with no axes (a 1-point grid) over `base`.
    #[must_use]
    pub fn new(base: SimConfig) -> Self {
        SweepSpec {
            name: "sweep".to_string(),
            base,
            axes: Vec::new(),
            filters: Vec::new(),
        }
    }

    /// Sets the display name.
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Appends a single-knob axis over `values`.
    #[must_use]
    pub fn axis<T: fmt::Display>(mut self, knob: &str, values: &[T]) -> Self {
        self.axes.push(Axis {
            points: values
                .iter()
                .map(|v| AxisPoint {
                    sets: vec![(knob.to_string(), v.to_string())],
                })
                .collect(),
        });
        self
    }

    /// Appends a paired axis: each point sets several knobs together.
    #[must_use]
    pub fn paired_axis(mut self, points: Vec<Vec<(&str, String)>>) -> Self {
        self.axes.push(Axis {
            points: points
                .into_iter()
                .map(|sets| AxisPoint {
                    sets: sets.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                })
                .collect(),
        });
        self
    }

    /// Appends a conjunctive filter clause (`"knob OP value"` syntax).
    /// Invalid clauses surface when the spec expands.
    #[must_use]
    pub fn filter(mut self, clause: &str) -> Self {
        match FilterClause::parse(clause) {
            Ok(c) => self.filters.push(c),
            // Remember the raw text so expand() reports the error with
            // the clause named, instead of silently dropping it here.
            Err(_) => self.filters.push(FilterClause {
                knob: clause.to_string(),
                op: FilterOp::Eq,
                value: String::new(),
            }),
        }
        self
    }

    /// Cross-product size: the product of the axis lengths (1 with no
    /// axes). With filters this is an **upper bound** — the expanded
    /// grid keeps only the points every clause accepts; use
    /// `expand()?.len()` for the exact count.
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.axes.iter().map(|a| a.points.len()).product()
    }

    /// Loads a spec from JSON. The base starts from
    /// [`SimConfig::cli_default`] (the flag-less `ndpsim` configuration)
    /// and applies the `"base"` object's knobs in order. Axes are either
    /// `{"knob": NAME, "values": [..]}` or `{"points": [{KNOB: V, ..},
    /// ..]}` (paired). An optional `"filter"` array of `"knob OP value"`
    /// clauses (conjunctive) prunes the cross product during expansion.
    /// Unknown keys and unknown knobs are errors.
    ///
    /// # Errors
    ///
    /// Malformed JSON, unknown keys/knobs, bad knob values, or
    /// malformed filter clauses.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let root = parse_json(text).map_err(|e| SpecError::new(format!("spec JSON: {e}")))?;
        let Json::Obj(fields) = root else {
            return Err(SpecError::new("spec JSON: root must be an object"));
        };
        let mut spec = SweepSpec::new(SimConfig::cli_default());
        for (key, val) in fields {
            match key.as_str() {
                "name" => {
                    spec.name = val
                        .scalar()
                        .ok_or_else(|| SpecError::new("spec \"name\" must be a string"))?;
                }
                "base" => {
                    let Json::Obj(knobs) = val else {
                        return Err(SpecError::new("spec \"base\" must be an object"));
                    };
                    for (name, v) in knobs {
                        let value = v.scalar().ok_or_else(|| {
                            SpecError::new(format!("base knob {name:?} must be a scalar"))
                        })?;
                        apply_knob(&mut spec.base, &name, &value)?;
                    }
                }
                "axes" => {
                    let Json::Arr(axes) = val else {
                        return Err(SpecError::new("spec \"axes\" must be an array"));
                    };
                    for axis in axes {
                        spec.axes.push(Self::axis_from_json(axis)?);
                    }
                }
                "filter" => {
                    let Json::Arr(clauses) = val else {
                        return Err(SpecError::new(
                            "spec \"filter\" must be an array of \"knob OP value\" strings",
                        ));
                    };
                    for clause in clauses {
                        let Json::Str(text) = clause else {
                            return Err(SpecError::new(
                                "each filter clause must be a \"knob OP value\" string",
                            ));
                        };
                        spec.filters.push(FilterClause::parse(&text)?);
                    }
                }
                other => {
                    return Err(SpecError::new(format!(
                        "unknown spec key {other:?}; valid keys: name, base, axes, filter"
                    )));
                }
            }
        }
        Ok(spec)
    }

    fn axis_from_json(axis: Json) -> Result<Axis, SpecError> {
        let Json::Obj(fields) = axis else {
            return Err(SpecError::new("each axis must be an object"));
        };
        let mut knob_name: Option<String> = None;
        let mut values: Option<Vec<Json>> = None;
        let mut points: Option<Vec<Json>> = None;
        for (key, val) in fields {
            match key.as_str() {
                "knob" => {
                    knob_name = Some(
                        val.scalar()
                            .ok_or_else(|| SpecError::new("axis \"knob\" must be a string"))?,
                    );
                }
                "values" => {
                    let Json::Arr(vs) = val else {
                        return Err(SpecError::new("axis \"values\" must be an array"));
                    };
                    values = Some(vs);
                }
                "points" => {
                    let Json::Arr(ps) = val else {
                        return Err(SpecError::new("axis \"points\" must be an array"));
                    };
                    points = Some(ps);
                }
                other => {
                    return Err(SpecError::new(format!(
                        "unknown axis key {other:?}; valid keys: knob, values, points"
                    )));
                }
            }
        }
        match (knob_name, values, points) {
            (Some(name), Some(vs), None) => {
                if knob(&name).is_none() {
                    // Surface the unknown knob now, with the full list.
                    apply_knob(&mut SimConfig::cli_default(), &name, "0")?;
                }
                if vs.is_empty() {
                    return Err(SpecError::new(format!("axis {name:?} has no values")));
                }
                Ok(Axis {
                    points: vs
                        .into_iter()
                        .map(|v| {
                            v.scalar()
                                .map(|value| AxisPoint {
                                    sets: vec![(name.clone(), value)],
                                })
                                .ok_or_else(|| {
                                    SpecError::new(format!("axis {name:?} values must be scalars"))
                                })
                        })
                        .collect::<Result<_, _>>()?,
                })
            }
            (None, None, Some(ps)) => {
                if ps.is_empty() {
                    return Err(SpecError::new("paired axis has no points"));
                }
                Ok(Axis {
                    points: ps
                        .into_iter()
                        .map(|p| {
                            let Json::Obj(sets) = p else {
                                return Err(SpecError::new(
                                    "each paired-axis point must be an object",
                                ));
                            };
                            let sets = sets
                                .into_iter()
                                .map(|(k, v)| {
                                    if knob(&k).is_none() {
                                        apply_knob(&mut SimConfig::cli_default(), &k, "0")?;
                                    }
                                    v.scalar().map(|value| (k.clone(), value)).ok_or_else(|| {
                                        SpecError::new(format!("point knob {k:?} must be a scalar"))
                                    })
                                })
                                .collect::<Result<_, _>>()?;
                            Ok(AxisPoint { sets })
                        })
                        .collect::<Result<_, _>>()?,
                })
            }
            _ => Err(SpecError::new(
                "each axis needs either \"knob\" + \"values\" or \"points\"",
            )),
        }
    }

    /// Structural validation of the axes themselves, before any grid
    /// point is built: an axis with zero values collapses the whole
    /// grid to nothing, and a knob appearing on two different axes
    /// makes one axis silently overwrite the other — both are spec
    /// bugs, rejected with the axis/knob named.
    ///
    /// # Errors
    ///
    /// Names the empty axis (1-based) or the knob and the two axes it
    /// appears on.
    pub fn validate_axes(&self) -> Result<(), SpecError> {
        let mut seen: Vec<(&str, usize)> = Vec::new();
        for (a, axis) in self.axes.iter().enumerate() {
            if axis.points.is_empty() {
                return Err(SpecError::new(format!(
                    "axis {} has zero values (an empty axis makes the grid empty)",
                    a + 1
                )));
            }
            let mut here: Vec<&str> = axis
                .points
                .iter()
                .flat_map(|p| p.sets.iter().map(|(k, _)| k.as_str()))
                .collect();
            here.sort_unstable();
            here.dedup();
            for k in here {
                if let Some(&(_, prev)) = seen.iter().find(|(name, _)| *name == k) {
                    return Err(SpecError::new(format!(
                        "knob {k:?} appears on both axis {prev} and axis {} \
                         (each knob may vary on one axis only)",
                        a + 1
                    )));
                }
                seen.push((k, a + 1));
            }
        }
        for clause in &self.filters {
            if knob(&clause.knob).is_none() {
                return Err(SpecError::new(format!(
                    "filter clause: {}",
                    unrecognized(&clause.knob, &knob_names())
                )));
            }
        }
        Ok(())
    }

    /// Expands the cross product into the deterministic grid: every
    /// combination exactly once, row-major (first axis slowest), each
    /// config validated. Filter clauses are evaluated on the **axis
    /// coordinates** (base values for knobs that do not vary) before
    /// any config is built, so sparse studies skip the cross-product
    /// cost; surviving points are re-indexed compactly (`index` =
    /// position in the filtered grid), keeping shard striping and
    /// resume emit-positions deterministic and hole-free.
    ///
    /// # Errors
    ///
    /// Structurally invalid axes or filters ([`Self::validate_axes`]),
    /// unknown knobs, bad values, a filter that rejects every point,
    /// or a grid point failing [`SimConfig::validate`] (the error
    /// names the point).
    pub fn expand(&self) -> Result<Vec<GridPoint>, SpecError> {
        self.validate_axes()?;
        // Base values (registry-canonical text) for filter clauses over
        // knobs that do not vary on any axis.
        let base_knobs: Vec<(&'static str, String)> = if self.filters.is_empty() {
            Vec::new()
        } else {
            config_knobs(&self.base)
        };
        let total = self.grid_len();
        let mut grid = Vec::new();
        for raw in 0..total {
            // Decompose the row-major cross-product index into per-axis
            // choices.
            let mut rem = raw;
            let mut choices = vec![0usize; self.axes.len()];
            for (a, axis) in self.axes.iter().enumerate().rev() {
                choices[a] = rem % axis.points.len();
                rem /= axis.points.len();
            }
            let mut coords = Vec::new();
            for (a, axis) in self.axes.iter().enumerate() {
                for (k, v) in &axis.points[choices[a]].sets {
                    coords.push((k.clone(), v.clone()));
                }
            }
            let mut keep = true;
            for clause in &self.filters {
                let actual = coords
                    .iter()
                    .find(|(k, _)| *k == clause.knob)
                    .map(|(_, v)| v.as_str())
                    .or_else(|| {
                        base_knobs
                            .iter()
                            .find(|(k, _)| *k == clause.knob)
                            .map(|(_, v)| v.as_str())
                    })
                    .unwrap_or("");
                if !clause.holds(actual)? {
                    keep = false;
                    break;
                }
            }
            if !keep {
                continue;
            }
            let index = grid.len();
            let mut config = self.base.clone();
            for (k, v) in &coords {
                apply_knob(&mut config, k, v)?;
            }
            if let Err(e) = config.validate() {
                let at: Vec<String> = coords.iter().map(|(k, v)| format!("{k}={v}")).collect();
                return Err(SpecError::new(format!(
                    "grid point {index} ({}): {e}",
                    at.join(", ")
                )));
            }
            grid.push(GridPoint {
                index,
                coords,
                config,
            });
        }
        if grid.is_empty() && !self.filters.is_empty() {
            let clauses: Vec<String> = self.filters.iter().map(ToString::to_string).collect();
            return Err(SpecError::new(format!(
                "filter [{}] rejects every grid point ({} candidates)",
                clauses.join(", "),
                total
            )));
        }
        Ok(grid)
    }
}

/// One expanded grid point.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Position in the row-major grid.
    pub index: usize,
    /// The axis assignments that produced this point.
    pub coords: Vec<(String, String)>,
    /// The fully-built configuration.
    pub config: SimConfig,
}

// ---------------------------------------------------------------------------
// The sweep engine.
// ---------------------------------------------------------------------------

/// One completed grid point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Position in the row-major grid.
    pub index: usize,
    /// The axis assignments that produced this point.
    pub coords: Vec<(String, String)>,
    /// [`config_fingerprint`] of the point's configuration (the resume
    /// key).
    pub config_fingerprint: u64,
    /// The simulation's full report.
    pub report: RunReport,
}

impl SweepRow {
    /// The value this row's coordinates assign to `knob`, if any.
    #[must_use]
    pub fn coord(&self, knob: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(k, _)| k == knob)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes this row as one JSONL line (no trailing newline):
    /// grid index, config fingerprint, coordinates, headline counters,
    /// the calibration counters (everything `calibrate --check` needs to
    /// derive Fig 4/5/7 metrics — PTW latency, translation fraction,
    /// walk rate, L1 data/metadata miss rates — from the file alone)
    /// and the report fingerprint. Resume only re-parses `i`/`cfg`/`fp`,
    /// so adding fields here never invalidates existing streams.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let knobs: Vec<String> = self
            .coords
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        format!(
            "{{\"i\":{},\"cfg\":{},\"knobs\":{{{}}},\"cycles\":{},\"ops\":{},\"mem_ops\":{},\"translation_cycles\":{},\"os_cycles\":{},\"walks\":{},\"ptw_cycles\":{},\"avg_core_cycles\":{},\"tlb_l1_hits\":{},\"tlb_l1_misses\":{},\"tlb_l2_misses\":{},\"l1d_hits\":{},\"l1d_misses\":{},\"l1m_hits\":{},\"l1m_misses\":{},\"fp\":{}}}",
            self.index,
            self.config_fingerprint,
            knobs.join(","),
            self.report.total_cycles.as_u64(),
            self.report.ops,
            self.report.mem_ops,
            self.report.translation_cycles,
            self.report.os_cycles,
            self.report.ptw.count,
            self.report.ptw.sum.as_u64(),
            self.report.avg_core_cycles,
            self.report.tlb_l1.hits,
            self.report.tlb_l1.misses,
            self.report.tlb_l2.misses,
            self.report.l1_data.hits,
            self.report.l1_data.misses,
            self.report.l1_metadata.hits,
            self.report.l1_metadata.misses,
            self.report.fingerprint(),
        )
    }
}

/// The outcome of [`run_sweep`]: every grid point's report, in grid
/// order, with grouping and summary helpers.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The spec's display name.
    pub name: String,
    /// One row per grid point, in row-major grid order.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The reports in grid order, consuming the result (what the legacy
    /// sweep wrappers project their typed rows from).
    #[must_use]
    pub fn into_reports(self) -> Vec<RunReport> {
        self.rows.into_iter().map(|r| r.report).collect()
    }

    /// XOR of every row's report fingerprint — one digest for the whole
    /// sweep.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.rows
            .iter()
            .fold(0u64, |d, r| d ^ r.report.fingerprint())
    }

    /// Groups rows by every coordinate **except** `knob`, preserving
    /// grid order within and across groups. For the common
    /// mechanism-paired sweeps, `pairs("mechanism")` yields one group
    /// per outer grid point with the Radix/NDPage rows side by side.
    #[must_use]
    pub fn pairs(&self, knob: &str) -> Vec<(Coords, Vec<&SweepRow>)> {
        let mut groups: Vec<(Coords, Vec<&SweepRow>)> = Vec::new();
        for row in &self.rows {
            let key: Coords = row
                .coords
                .iter()
                .filter(|(k, _)| k != knob)
                .cloned()
                .collect();
            if let Some((_, rows)) = groups.iter_mut().find(|(k, _)| *k == key) {
                rows.push(row);
            } else {
                groups.push((key, vec![row]));
            }
        }
        groups
    }

    /// Geometric mean of `metric` over every row.
    #[must_use]
    pub fn geomean_of(&self, metric: impl Fn(&RunReport) -> f64) -> f64 {
        let vals: Vec<f64> = self.rows.iter().map(|r| metric(&r.report)).collect();
        geomean(&vals)
    }

    /// Geometric-mean speedup of `test` over `baseline` along `knob`:
    /// rows are paired by their other coordinates, and each pair
    /// contributes `baseline.total_cycles / test.total_cycles`. Returns
    /// 0.0 when no pair has both values.
    #[must_use]
    pub fn geomean_speedup(&self, knob: &str, baseline: &str, test: &str) -> f64 {
        let mut ratios = Vec::new();
        for (_, rows) in self.pairs(knob) {
            let base = rows.iter().find(|r| r.coord(knob) == Some(baseline));
            let fast = rows.iter().find(|r| r.coord(knob) == Some(test));
            if let (Some(b), Some(t)) = (base, fast) {
                if t.report.total_cycles.as_u64() > 0 {
                    ratios.push(b.report.total_cycles.as_f64() / t.report.total_cycles.as_f64());
                }
            }
        }
        if ratios.is_empty() {
            0.0
        } else {
            geomean(&ratios)
        }
    }

    /// Serializes every row as JSONL (one line per grid point, grid
    /// order) — exactly the bytes [`run_sweep_jsonl`] writes.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// Expands a spec and runs every grid point across the work-stealing
/// parallel driver, returning reports in grid order (bit-identical to a
/// serial loop at any thread count).
///
/// # Errors
///
/// Propagates [`SweepSpec::expand`] errors; execution itself cannot
/// fail.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, SpecError> {
    let grid = spec.expand()?;
    let mut meta = Vec::with_capacity(grid.len());
    let mut configs = Vec::with_capacity(grid.len());
    for p in grid {
        meta.push((p.index, p.coords, config_fingerprint(&p.config)));
        configs.push(p.config);
    }
    let reports = par_map(configs, |cfg| Machine::new(cfg).run());
    let rows = meta
        .into_iter()
        .zip(reports)
        .map(|((index, coords, config_fingerprint), report)| SweepRow {
            index,
            coords,
            config_fingerprint,
            report,
        })
        .collect();
    Ok(SweepResult {
        name: spec.name.clone(),
        rows,
    })
}

// ---------------------------------------------------------------------------
// Incremental JSONL output + resume.
// ---------------------------------------------------------------------------

/// One row parsed back from a JSONL sweep file (resume bookkeeping —
/// the full report is not deserialized; `line` preserves the original
/// bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlRow {
    /// Grid index recorded in the row.
    pub index: u64,
    /// Config fingerprint recorded in the row (the resume key).
    pub config_fingerprint: u64,
    /// Report fingerprint recorded in the row.
    pub report_fingerprint: u64,
    /// The row's original line, verbatim (no newline).
    pub line: String,
}

/// Parses a JSONL sweep file, skipping malformed lines (a truncated
/// final line after an interrupt parses as malformed and is dropped, so
/// its grid point re-runs).
#[must_use]
pub fn parse_jsonl(text: &str) -> Vec<JsonlRow> {
    text.lines().filter_map(parse_jsonl_line).collect()
}

/// Result of strictly ingesting a JSONL sweep stream for resume/merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlIngest {
    /// Every valid, newline-terminated row, in file order.
    pub rows: Vec<JsonlRow>,
    /// Byte offset just past each row's newline (parallel to `rows`) —
    /// truncating the file to `ends[k]` keeps exactly rows `0..=k`.
    pub ends: Vec<u64>,
    /// Non-fatal observations: a torn or garbage **trailing** line is
    /// skipped with a warning here (its point simply re-runs).
    pub warnings: Vec<String>,
}

/// Strictly parses a JSONL sweep stream with line-granular crash
/// recovery semantics: a malformed or unterminated **final** line is
/// the signature of an interrupted append and is skipped with a
/// warning (truncate-and-redo — never an error, never a duplicate);
/// a malformed line **mid**-file means something other than a crash
/// mangled the stream, and that is an error naming the line.
///
/// Blank lines are ignored. A *valid* final line without a trailing
/// newline is still treated as torn: append-only recovery truncates
/// to the last newline-terminated row, so a partially-flushed line
/// re-runs rather than risking a half-written row surviving.
///
/// # Errors
///
/// Corruption before the final line, with `source` and the 1-based
/// line number in the message.
pub fn ingest_jsonl(text: &str, source: &str) -> Result<JsonlIngest, SpecError> {
    let mut ingest = JsonlIngest {
        rows: Vec::new(),
        ends: Vec::new(),
        warnings: Vec::new(),
    };
    let mut offset = 0u64;
    let mut lineno = 0usize;
    let mut segments = text.split_inclusive('\n').peekable();
    while let Some(seg) = segments.next() {
        lineno += 1;
        offset += seg.len() as u64;
        let last = segments.peek().is_none();
        let terminated = seg.ends_with('\n');
        let content = seg.trim_end_matches('\n').trim_end_matches('\r');
        if content.trim().is_empty() {
            continue;
        }
        let row = parse_jsonl_line(content);
        match (row, terminated, last) {
            (Some(row), true, _) => {
                ingest.rows.push(row);
                ingest.ends.push(offset);
            }
            (Some(_), false, _) => {
                // Unterminated can only be the final segment.
                ingest.warnings.push(format!(
                    "{source}: final line {lineno} has no trailing newline \
                     (torn write); dropping it, its grid point will re-run"
                ));
            }
            (None, _, true) => {
                ingest.warnings.push(format!(
                    "{source}: skipping truncated/garbage trailing line {lineno}; \
                     its grid point will re-run"
                ));
            }
            (None, _, false) => {
                return Err(SpecError::new(format!(
                    "{source}: corrupt JSONL row at line {lineno} (mid-file — \
                     not a torn tail; refusing to resume over it)"
                )));
            }
        }
    }
    Ok(ingest)
}

fn parse_jsonl_line(line: &str) -> Option<JsonlRow> {
    let Ok(Json::Obj(fields)) = parse_json(line) else {
        return None;
    };
    let num = |key: &str| -> Option<u64> {
        fields.iter().find_map(|(k, v)| match v {
            Json::Num(raw) if k == key => raw.parse().ok(),
            _ => None,
        })
    };
    Some(JsonlRow {
        index: num("i")?,
        config_fingerprint: num("cfg")?,
        report_fingerprint: num("fp")?,
        line: line.to_string(),
    })
}

/// Loads resume rows from `sources` in order (later sources win) into
/// a by-grid-index cache. A row is usable only when its grid index and
/// config fingerprint both match the current grid; anything else is
/// warned about and ignored. A duplicate grid index **within one
/// file** is warned about, last row wins.
///
/// # Errors
///
/// Mid-file corruption in any source ([`ingest_jsonl`]).
fn load_resume_cache(
    sources: &[std::path::PathBuf],
    fps: &[u64],
    warnings: &mut Vec<String>,
) -> Result<Vec<Option<JsonlRow>>, SpecError> {
    let mut cached: Vec<Option<JsonlRow>> = vec![None; fps.len()];
    for src in sources {
        let Ok(text) = std::fs::read_to_string(src) else {
            continue;
        };
        let name = src.display().to_string();
        let ingest = ingest_jsonl(&text, &name)?;
        warnings.extend(ingest.warnings);
        let mut seen = vec![false; fps.len()];
        for row in ingest.rows {
            let idx = row.index as usize;
            if idx >= fps.len() || fps[idx] != row.config_fingerprint {
                warnings.push(format!(
                    "{name}: row for grid index {} does not match the current \
                     grid (ignored; its point re-runs if still in the spec)",
                    row.index
                ));
                continue;
            }
            if seen[idx] {
                warnings.push(format!(
                    "{name}: duplicate row for grid index {idx} (keeping the last)"
                ));
            }
            seen[idx] = true;
            cached[idx] = Some(row);
        }
    }
    Ok(cached)
}

/// Summary of a [`run_sweep_jsonl`] drive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRunSummary {
    /// Grid points this run was responsible for (the full grid, or the
    /// shard's stripe under `--shard`).
    pub grid: usize,
    /// Points actually simulated this run.
    pub executed: usize,
    /// Points reused from resume state (final output, `.tmp` stream or
    /// shard files).
    pub reused: usize,
    /// XOR of every row's report fingerprint (reused rows contribute
    /// their recorded fingerprint).
    pub digest: u64,
    /// Non-fatal resume observations (torn tails skipped, stale rows
    /// ignored, duplicates resolved). Callers should surface these.
    pub warnings: Vec<String>,
}

/// How [`run_sweep_jsonl_opts`] executes and recovers.
#[derive(Debug, Clone, Default)]
pub struct JsonlOptions {
    /// Reuse matching rows from existing output/stream/shard files.
    pub resume: bool,
    /// Run only this stripe of the grid, streaming to the shard file.
    pub shard: Option<ShardSpec>,
    /// Fault-injection plan (tests only; `None` in production).
    pub fault: Option<FaultPlan>,
}

/// Runs a sweep with **incremental JSONL output**: the stream always
/// holds a contiguous, in-order prefix of completed rows (each flushed
/// as soon as every earlier point has retired), so an interrupted sweep
/// leaves a usable, resumable stream. The final file lands via
/// temp-file + atomic rename ([`run_sweep_jsonl_opts`] for details).
///
/// With `resume`, rows already on disk are reused — a row is reused
/// when both its config fingerprint and its grid index match the
/// current spec, so a spec edit re-runs exactly the points it moved or
/// changed — and only the remaining grid points execute. The merged
/// file is byte-for-byte identical to an uninterrupted run.
///
/// # Errors
///
/// Spec expansion errors, mid-file resume corruption, or I/O errors.
pub fn run_sweep_jsonl(
    spec: &SweepSpec,
    path: &Path,
    resume: bool,
) -> Result<SweepRunSummary, SpecError> {
    run_sweep_jsonl_opts(
        spec,
        path,
        &JsonlOptions {
            resume,
            ..JsonlOptions::default()
        },
    )
}

/// In-order row sink over a position list: positions `0..written` are
/// already on disk; `put` appends the next one.
struct Sink<'a> {
    w: std::io::BufWriter<std::fs::File>,
    /// Positions (into the emit list) already emitted.
    written: usize,
    /// Grid index of each emit position (fault-plan addressing).
    emit: &'a [usize],
    cached: &'a [Option<JsonlRow>],
    fault: Option<&'a FaultPlan>,
    err: Option<String>,
}

impl Sink<'_> {
    fn put(&mut self, line: &str) {
        let pos = self.written;
        // Count the row as logically emitted even after an earlier
        // write error: `written` is the loop variable of
        // `flush_cached_until`, which must keep terminating so the
        // first error can propagate instead of hanging the workers.
        self.written += 1;
        if self.err.is_some() {
            return;
        }
        if let Some(fault) = self.fault {
            // Abort/hang/torn exit or block here; returns iff disarmed.
            fault.maybe_fire(self.emit[pos] as u64, line, &mut self.w);
        }
        if let Err(e) = writeln!(self.w, "{line}") {
            self.err = Some(e.to_string());
        }
    }

    /// Writes cached rows up to (not including) emit position `upto`.
    fn flush_cached_until(&mut self, upto: usize) {
        while self.written < upto {
            match &self.cached[self.written] {
                Some(row) => {
                    let line = row.line.clone();
                    self.put(&line);
                }
                // The engine only calls with `upto` = a position about
                // to be written fresh; every earlier position is cached
                // or in the execute list, which runs in ascending order.
                // A gap would mean the resume bookkeeping lost a row —
                // surfaced as a sweep error (never a panic: a supervised
                // worker must die reporting, not crash mid-stream), with
                // `written` still advancing so the loop terminates.
                None => {
                    if self.err.is_none() {
                        self.err = Some(format!(
                            "internal: gap in completed sweep prefix at emit position {}",
                            self.written
                        ));
                    }
                    self.written += 1;
                }
            }
        }
        let _ = self.w.flush();
    }
}

/// Streams rows for emit positions `start..emit.len()` into `file` in
/// order: cached rows are copied, the rest simulate on the parallel
/// driver and flush per-row. Returns `(executed, digest_of_executed)`.
#[allow(clippy::too_many_arguments)]
fn stream_rows(
    grid: &[GridPoint],
    fps: &[u64],
    emit: &[usize],
    start: usize,
    cached: &[Option<JsonlRow>],
    file: std::fs::File,
    fault: Option<&FaultPlan>,
    path: &Path,
) -> Result<(usize, u64), SpecError> {
    let mut missing_pos = Vec::new();
    let mut missing_cfgs = Vec::new();
    for pos in start..emit.len() {
        if cached[pos].is_none() {
            missing_pos.push(pos);
            missing_cfgs.push(grid[emit[pos]].config.clone());
        }
    }

    let mut sink = Sink {
        w: std::io::BufWriter::new(file),
        written: start,
        emit,
        cached,
        fault,
        err: None,
    };
    // Land the reused prefix immediately — a sweep interrupted again
    // while its first missing point is still simulating must not lose
    // rows it already had.
    sink.flush_cached_until(missing_pos.first().copied().unwrap_or(emit.len()));

    let executed = missing_pos.len();
    let missing_rows: Vec<(usize, Coords, u64)> = missing_pos
        .iter()
        .map(|&p| (p, grid[emit[p]].coords.clone(), fps[emit[p]]))
        .collect();
    let reports = par_map_sink(missing_cfgs, |cfg| Machine::new(cfg).run(), {
        let sink = &mut sink;
        let missing_rows = &missing_rows;
        move |k: usize, report: &RunReport| {
            let (p, ref coords, cfg_fp) = missing_rows[k];
            sink.flush_cached_until(p);
            let row = SweepRow {
                index: emit[p],
                coords: coords.clone(),
                config_fingerprint: cfg_fp,
                report: report.clone(),
            };
            sink.put(&row.to_jsonl());
            let _ = sink.w.flush();
        }
    });
    sink.flush_cached_until(emit.len());
    if let Some(e) = sink.err {
        return Err(SpecError::new(format!("writing {}: {e}", path.display())));
    }
    drop(sink);

    let mut digest = 0u64;
    for report in &reports {
        digest ^= report.fingerprint();
    }
    Ok((executed, digest))
}

/// The crash-safe JSONL sweep engine.
///
/// **Serial mode** (`shard: None`): resumes from the final output, its
/// `.tmp` stream and any shard files next to it (later sources win),
/// streams the full grid to `<path>.tmp`, then atomically renames onto
/// `path` and removes the now-stale shard files. An interrupt leaves
/// the previous `path` intact and a contiguous `.tmp` prefix to resume
/// from; `path` itself is never half-written.
///
/// **Shard mode** (`shard: Some(I/N)`): runs only grid indices with
/// `i % N == I`, appending to `<path>.shard-I-of-N`. Resume keeps the
/// longest prefix of the shard file that matches the stripe in order
/// (truncating a torn tail byte-accurately), reuses matching rows from
/// the merged output for later stripe positions, and appends the rest
/// with a per-row flush — the file's growth is the worker's heartbeat.
/// [`merge_sweep_jsonl`] stitches shard files back into the serial
/// byte stream.
///
/// # Errors
///
/// Spec expansion errors, mid-file corruption in resume sources, or
/// I/O errors.
pub fn run_sweep_jsonl_opts(
    spec: &SweepSpec,
    path: &Path,
    opts: &JsonlOptions,
) -> Result<SweepRunSummary, SpecError> {
    let grid = spec.expand()?;
    let fps: Vec<u64> = grid.iter().map(|p| config_fingerprint(&p.config)).collect();
    let mut warnings = Vec::new();

    if let Some(sh) = opts.shard {
        let emit: Vec<usize> = (0..grid.len()).filter(|&i| sh.owns(i)).collect();
        let spath = shard::shard_path(path, sh);
        let sname = spath.display().to_string();

        // The shard file is append-only in stripe order, so its usable
        // resume state is the longest prefix matching the stripe; the
        // first mismatched row (spec edit) or torn tail truncates.
        let mut prefix_rows = 0usize;
        let mut prefix_bytes = 0u64;
        let mut digest = 0u64;
        if opts.resume {
            if let Ok(text) = std::fs::read_to_string(&spath) {
                let ingest = ingest_jsonl(&text, &sname)?;
                warnings.extend(ingest.warnings);
                for (k, row) in ingest.rows.iter().enumerate() {
                    let expect = emit.get(k).copied();
                    if expect != Some(row.index as usize)
                        || fps[row.index as usize] != row.config_fingerprint
                    {
                        warnings.push(format!(
                            "{sname}: row {} does not match stripe {sh} of the \
                             current grid; truncating and re-running from there",
                            k + 1
                        ));
                        break;
                    }
                    prefix_rows = k + 1;
                    prefix_bytes = ingest.ends[k];
                    digest ^= row.report_fingerprint;
                }
            }
        }

        // Later stripe positions can still reuse rows from a previous
        // (possibly partial) merged output or its stream.
        let mut cached: Vec<Option<JsonlRow>> = vec![None; emit.len()];
        if opts.resume {
            let sources = [path.to_path_buf(), shard::stream_path(path)];
            let mut by_idx = load_resume_cache(&sources, &fps, &mut warnings)?;
            for (pos, &g) in emit.iter().enumerate().skip(prefix_rows) {
                cached[pos] = by_idx[g].take();
            }
        }

        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&spath)
            .map_err(|e| SpecError::new(format!("cannot open {sname}: {e}")))?;
        file.set_len(prefix_bytes)
            .map_err(|e| SpecError::new(format!("cannot truncate {sname}: {e}")))?;
        {
            use std::io::Seek as _;
            let mut f = &file;
            f.seek(std::io::SeekFrom::End(0))
                .map_err(|e| SpecError::new(format!("cannot seek {sname}: {e}")))?;
        }

        let reused = prefix_rows + cached.iter().flatten().count();
        for row in cached.iter().flatten() {
            digest ^= row.report_fingerprint;
        }
        let (executed, exec_digest) = stream_rows(
            &grid,
            &fps,
            &emit,
            prefix_rows,
            &cached,
            file,
            opts.fault.as_ref(),
            &spath,
        )?;
        Ok(SweepRunSummary {
            grid: emit.len(),
            executed,
            reused,
            digest: digest ^ exec_digest,
            warnings,
        })
    } else {
        let emit: Vec<usize> = (0..grid.len()).collect();
        let shard_files = shard::existing_shard_files(path);
        let mut cached: Vec<Option<JsonlRow>> = vec![None; grid.len()];
        if opts.resume {
            let mut sources = vec![path.to_path_buf(), shard::stream_path(path)];
            sources.extend(shard_files.iter().cloned());
            cached = load_resume_cache(&sources, &fps, &mut warnings)?;
        }

        let tmp = shard::stream_path(path);
        let file = std::fs::File::create(&tmp)
            .map_err(|e| SpecError::new(format!("cannot create {}: {e}", tmp.display())))?;
        let reused = cached.iter().flatten().count();
        let mut digest = 0u64;
        for row in cached.iter().flatten() {
            digest ^= row.report_fingerprint;
        }
        let (executed, exec_digest) = stream_rows(
            &grid,
            &fps,
            &emit,
            0,
            &cached,
            file,
            opts.fault.as_ref(),
            &tmp,
        )?;
        std::fs::rename(&tmp, path).map_err(|e| {
            SpecError::new(format!(
                "cannot rename {} to {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        // The sweep is complete at `path`; shard files for it are stale.
        for f in &shard_files {
            std::fs::remove_file(f).ok();
        }
        Ok(SweepRunSummary {
            grid: grid.len(),
            executed,
            reused,
            digest: digest ^ exec_digest,
            warnings,
        })
    }
}

/// Summary of a [`merge_sweep_jsonl`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    /// Total grid points in the spec.
    pub grid: usize,
    /// Rows present in the merged output.
    pub merged: usize,
    /// Grid indices with no completed row anywhere (partial sweep).
    pub missing: Vec<usize>,
    /// XOR of every merged row's report fingerprint.
    pub digest: u64,
    /// Non-fatal observations from ingesting the sources.
    pub warnings: Vec<String>,
}

/// Merges shard files (plus any previous merged output / `.tmp`
/// stream) into the final JSONL at `path`: rows in grid order, written
/// through `<path>.tmp` + atomic rename, byte-identical to an
/// uninterrupted serial run when every row is present. Deliberately
/// consults no fault plan — a supervisor with `NDP_FAULT` exported for
/// its workers merges unharmed. On a complete merge the shard files
/// are removed; on a partial one they are kept so a later run can
/// resume, and `missing` lists the absent grid indices.
///
/// # Errors
///
/// Spec expansion errors, mid-file corruption in any source, or I/O
/// errors writing the merged file.
pub fn merge_sweep_jsonl(spec: &SweepSpec, path: &Path) -> Result<MergeSummary, SpecError> {
    let grid = spec.expand()?;
    let fps: Vec<u64> = grid.iter().map(|p| config_fingerprint(&p.config)).collect();
    let mut warnings = Vec::new();

    let shard_files = shard::existing_shard_files(path);
    let mut sources = vec![path.to_path_buf(), shard::stream_path(path)];
    sources.extend(shard_files.iter().cloned());
    let cached = load_resume_cache(&sources, &fps, &mut warnings)?;

    let missing: Vec<usize> = (0..grid.len()).filter(|&i| cached[i].is_none()).collect();
    let tmp = shard::stream_path(path);
    let file = std::fs::File::create(&tmp)
        .map_err(|e| SpecError::new(format!("cannot create {}: {e}", tmp.display())))?;
    let mut w = std::io::BufWriter::new(file);
    let mut digest = 0u64;
    let mut merged = 0usize;
    for row in cached.iter().flatten() {
        writeln!(w, "{}", row.line)
            .map_err(|e| SpecError::new(format!("writing {}: {e}", tmp.display())))?;
        digest ^= row.report_fingerprint;
        merged += 1;
    }
    w.flush()
        .map_err(|e| SpecError::new(format!("writing {}: {e}", tmp.display())))?;
    drop(w);
    std::fs::rename(&tmp, path).map_err(|e| {
        SpecError::new(format!(
            "cannot rename {} to {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    if missing.is_empty() {
        for f in &shard_files {
            std::fs::remove_file(f).ok();
        }
    }
    Ok(MergeSummary {
        grid: grid.len(),
        merged,
        missing,
        digest,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;

    fn base() -> SimConfig {
        SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Rnd)
    }

    #[test]
    fn every_knob_is_registered_exactly_once() {
        let mut names: Vec<&str> = KNOBS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KNOBS.len(), "duplicate knob names");
        let mut flags: Vec<&str> = KNOBS.iter().filter_map(|k| k.flag).collect();
        flags.sort_unstable();
        flags.dedup();
        assert_eq!(
            flags.len(),
            KNOBS.iter().filter(|k| k.flag.is_some()).count(),
            "duplicate flags"
        );
    }

    #[test]
    fn apply_get_round_trips_every_knob() {
        // Mutate every field away from the default, then check that
        // serializing and re-applying the knob list reproduces the
        // config exactly (same fingerprint).
        let mut cfg = base();
        cfg.system = SystemKind::Cpu;
        cfg.cores = 7;
        cfg.mechanism = Mechanism::HugePage;
        cfg.workload = WorkloadId::Gen;
        cfg.warmup_ops = 123;
        cfg.measure_ops = 456;
        cfg.footprint_divisor = 3;
        cfg.footprint_override = Some(77 << 20);
        cfg.seed = 0xdead_beef_dead_beef;
        cfg.fault_minor_4k = Cycles::new(601);
        cfg.fault_minor_2m = Cycles::new(2601);
        cfg.fault_fallback = Cycles::new(15001);
        cfg.rehash_entry_cost = Cycles::new(41);
        cfg.pwc_override = Some(false);
        cfg.bypass_override = Some(BypassPolicy::MetadataL1Bypass);
        cfg.memory_capacity_override = Some(1 << 33);
        cfg.pwc_entries = Some(128);
        cfg.tlb_l2_entries = Some(768);
        cfg.tlb_fracture_huge = Some(false);
        cfg.compaction_tax = Cycles::new(2201);
        cfg.procs_per_core = 3;
        cfg.context_switch_quantum_ops = 999;
        cfg.context_switch_cost = Cycles::new(4001);
        cfg.tlb_tagging = false;
        cfg.mlp_window = 8;
        cfg.mshrs_per_core = 16;
        cfg.walkers_per_core = 2;
        cfg.l3_kb = 2048;
        cfg.l3_ways = 8;
        cfg.l3_banks = 4;
        cfg.l3_policy = InclusionPolicy::Exclusive;
        cfg.vault_buffer_kb = 128;

        let mut rebuilt = SimConfig::cli_default();
        for (name, value) in config_knobs(&cfg) {
            apply_knob(&mut rebuilt, name, &value).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&rebuilt));
        // Spot-check fields the fingerprint hash could in principle
        // collide on.
        assert_eq!(rebuilt.l3_policy, InclusionPolicy::Exclusive);
        assert_eq!(
            rebuilt.bypass_override,
            Some(BypassPolicy::MetadataL1Bypass)
        );
        assert_eq!(rebuilt.footprint_override, Some(77 << 20));
        assert!(!rebuilt.tlb_tagging);
    }

    #[test]
    fn optional_knobs_clear_with_default() {
        let mut cfg = base();
        cfg.pwc_entries = Some(99);
        apply_knob(&mut cfg, "pwc_entries", "default").unwrap();
        assert_eq!(cfg.pwc_entries, None);
        apply_knob(&mut cfg, "footprint", "default").unwrap();
        assert_eq!(cfg.footprint_override, None);
    }

    #[test]
    fn unknown_knob_lists_valid_names() {
        let err = apply_knob(&mut base(), "no_such_knob", "1").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no_such_knob"));
        assert!(msg.contains("mlp_window") && msg.contains("l3_policy"));
    }

    #[test]
    fn bad_values_name_the_constraint() {
        let err = apply_knob(&mut base(), "cores", "many").unwrap_err();
        assert!(err.to_string().contains("many"));
        let err = apply_knob(&mut base(), "cores", "4294967297").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
        let err = apply_knob(&mut base(), "mechanism", "foo").unwrap_err();
        assert!(err.to_string().contains("ndpage"));
        let err = apply_knob(&mut base(), "workload", "bar").unwrap_err();
        assert!(err.to_string().contains("BFS"));
        let err = apply_knob(&mut base(), "l3_policy", "open").unwrap_err();
        assert!(err.to_string().contains("exclusive"));
    }

    #[test]
    fn config_fingerprint_separates_and_repeats() {
        assert_eq!(config_fingerprint(&base()), config_fingerprint(&base()));
        let mut other = base();
        other.seed += 1;
        assert_ne!(config_fingerprint(&base()), config_fingerprint(&other));
    }

    #[test]
    fn grid_expands_row_major_exactly_once() {
        let spec = SweepSpec::new(base())
            .axis("pwc_entries", &[8usize, 64])
            .axis("mechanism", &["radix", "ndpage"]);
        assert_eq!(spec.grid_len(), 4);
        let grid = spec.expand().unwrap();
        let coords: Vec<String> = grid
            .iter()
            .map(|p| {
                p.coords
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert_eq!(
            coords,
            vec![
                "pwc_entries=8,mechanism=radix",
                "pwc_entries=8,mechanism=ndpage",
                "pwc_entries=64,mechanism=radix",
                "pwc_entries=64,mechanism=ndpage",
            ]
        );
        // Deterministic: a second expansion is identical, config for
        // config.
        let again = spec.expand().unwrap();
        for (a, b) in grid.iter().zip(&again) {
            assert_eq!(config_fingerprint(&a.config), config_fingerprint(&b.config));
        }
        // Exactly once: all four config fingerprints distinct.
        let mut fps: Vec<u64> = grid.iter().map(|p| config_fingerprint(&p.config)).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 4);
    }

    #[test]
    fn paired_axis_sets_knobs_together() {
        let spec = SweepSpec::new(base()).paired_axis(vec![
            vec![("mlp_window", "1".into()), ("mshrs_per_core", "1".into())],
            vec![("mlp_window", "8".into()), ("mshrs_per_core", "8".into())],
        ]);
        let grid = spec.expand().unwrap();
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[1].config.mlp_window, 8);
        assert_eq!(grid[1].config.mshrs_per_core, 8);
    }

    #[test]
    fn expansion_validates_each_point() {
        let spec = SweepSpec::new(base()).axis("mlp_window", &[1u32, 0]);
        let err = spec.expand().unwrap_err().to_string();
        assert!(err.contains("grid point 1"), "{err}");
        assert!(err.contains("mlp_window=0"), "{err}");
    }

    #[test]
    fn spec_json_round_trip() {
        let spec = SweepSpec::from_json(
            r#"{
                "name": "demo",
                "base": {"workload": "RND", "cores": 2, "measure_ops": 1000},
                "axes": [
                    {"knob": "l3_kb", "values": [0, 2048]},
                    {"points": [{"mlp_window": 1, "mshrs_per_core": 1},
                                {"mlp_window": 8, "mshrs_per_core": 8}]},
                    {"knob": "mechanism", "values": ["radix", "ndpage"]}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.base.workload, WorkloadId::Rnd);
        assert_eq!(spec.base.cores, 2);
        assert_eq!(spec.base.measure_ops, 1000);
        // Unset base knobs keep the CLI defaults.
        assert_eq!(spec.base.footprint_override, Some(1 << 30));
        assert_eq!(spec.grid_len(), 8);
        let grid = spec.expand().unwrap();
        assert_eq!(grid[7].config.l3_kb, 2048);
        assert_eq!(grid[7].config.mlp_window, 8);
        assert_eq!(grid[7].config.mechanism, Mechanism::NdPage);
    }

    #[test]
    fn spec_json_rejects_unknowns() {
        let err = SweepSpec::from_json(r#"{"bases": {}}"#).unwrap_err();
        assert!(err.to_string().contains("unknown spec key"));
        let err = SweepSpec::from_json(r#"{"base": {"coers": 2}}"#).unwrap_err();
        assert!(err.to_string().contains("coers"));
        assert!(err.to_string().contains("valid knobs"));
        let err =
            SweepSpec::from_json(r#"{"axes": [{"knob": "nope", "values": [1]}]}"#).unwrap_err();
        assert!(err.to_string().contains("nope"));
        let err = SweepSpec::from_json(r#"{"axes": [{"values": [1]}]}"#).unwrap_err();
        assert!(err.to_string().contains("knob"));
        let err = SweepSpec::from_json(r#"{"#).unwrap_err();
        assert!(err.to_string().contains("spec JSON"));
    }

    #[test]
    fn jsonl_rows_parse_back() {
        let spec =
            SweepSpec::new(base().with_ops(200, 500)).axis("mechanism", &["radix", "ndpage"]);
        let result = run_sweep(&spec).unwrap();
        let text = result.to_jsonl();
        let rows = parse_jsonl(&text);
        assert_eq!(rows.len(), 2);
        for (row, parsed) in result.rows.iter().zip(&rows) {
            assert_eq!(parsed.index as usize, row.index);
            assert_eq!(parsed.config_fingerprint, row.config_fingerprint);
            assert_eq!(parsed.report_fingerprint, row.report.fingerprint());
            assert_eq!(parsed.line, row.to_jsonl());
        }
        // A truncated final line is dropped, not mis-parsed.
        let truncated = &text[..text.len() - 10];
        assert_eq!(parse_jsonl(truncated).len(), 1);
    }

    #[test]
    fn sweep_result_pairs_and_geomean() {
        let spec = SweepSpec::new(base().with_ops(200, 500))
            .axis("pwc_entries", &[8usize, 64])
            .axis("mechanism", &["radix", "ndpage"]);
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.rows.len(), 4);
        let pairs = result.pairs("mechanism");
        assert_eq!(pairs.len(), 2, "one group per pwc size");
        for (key, rows) in &pairs {
            assert_eq!(key.len(), 1);
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].coord("mechanism"), Some("radix"));
            assert_eq!(rows[1].coord("mechanism"), Some("ndpage"));
        }
        let speedup = result.geomean_speedup("mechanism", "radix", "ndpage");
        assert!(speedup > 0.5 && speedup < 5.0, "sane speedup: {speedup}");
        assert_eq!(result.geomean_speedup("mechanism", "radix", "radix"), 1.0);
        assert_eq!(result.geomean_speedup("mechanism", "nope", "ndpage"), 0.0);
        let digest = result.digest();
        assert_ne!(digest, 0);
    }

    #[test]
    fn json_parser_handles_scalars_and_nesting() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(
            parse_json("18446744073709551615").unwrap(),
            Json::Num("18446744073709551615".to_string())
        );
        assert_eq!(
            parse_json(r#""a\"b\\c""#).unwrap(),
            Json::Str("a\"b\\c".to_string())
        );
        let v = parse_json(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let Json::Obj(fields) = v else { panic!() };
        assert_eq!(fields.len(), 2);
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn json_escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te";
        let text = format!("\"{}\"", json_escape(nasty));
        assert_eq!(parse_json(&text).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn json_strings_keep_multibyte_utf8_intact() {
        assert_eq!(
            parse_json("\"café Σweep\"").unwrap(),
            Json::Str("café Σweep".to_string())
        );
        let spec = SweepSpec::from_json(r#"{"name": "café"}"#).unwrap();
        assert_eq!(spec.name, "café");
    }

    #[test]
    fn axes_reject_a_knob_on_two_axes() {
        let spec = SweepSpec::new(base())
            .axis("seed", &[1u64, 2])
            .axis("mechanism", &["radix", "ndpage"])
            .axis("seed", &[3u64]);
        let err = spec.expand().unwrap_err().to_string();
        assert!(err.contains("\"seed\""), "names the knob: {err}");
        assert!(
            err.contains("axis 1") && err.contains("axis 3"),
            "names both axes: {err}"
        );
        // A paired axis sharing a knob with a plain axis is caught too.
        let spec = SweepSpec::new(base())
            .axis("cores", &[1u32, 2])
            .paired_axis(vec![vec![("cores", "4".to_string())]]);
        assert!(spec.expand().is_err());
    }

    #[test]
    fn axes_reject_zero_values() {
        let spec = SweepSpec::new(base()).axis("seed", &[] as &[u64]);
        let err = spec.expand().unwrap_err().to_string();
        assert!(
            err.contains("axis 1") && err.contains("zero values"),
            "{err}"
        );
    }

    #[test]
    fn ingest_accepts_clean_streams_with_byte_ends() {
        let text = "{\"i\":0,\"cfg\":10,\"fp\":100}\n{\"i\":1,\"cfg\":11,\"fp\":101}\n";
        let ingest = ingest_jsonl(text, "test").unwrap();
        assert_eq!(ingest.rows.len(), 2);
        assert!(ingest.warnings.is_empty());
        assert_eq!(ingest.ends[0], 26);
        assert_eq!(ingest.ends[1], text.len() as u64);
        assert!(ingest_jsonl("", "test").unwrap().rows.is_empty());
    }

    #[test]
    fn ingest_skips_torn_or_garbage_tails_with_a_warning() {
        for tail in ["{\"i\":2,\"cfg\":1", "not json at all\n", "{\"i\":2}\n"] {
            let text = format!("{{\"i\":0,\"cfg\":10,\"fp\":100}}\n{tail}");
            let ingest = ingest_jsonl(&text, "test").unwrap();
            assert_eq!(ingest.rows.len(), 1, "tail {tail:?}");
            assert_eq!(ingest.warnings.len(), 1, "tail {tail:?}");
            assert!(
                ingest.warnings[0].contains("line 2"),
                "{}",
                ingest.warnings[0]
            );
        }
        // A *valid* final row without its newline is still torn: the
        // append stream recovers to the last terminated line.
        let text = "{\"i\":0,\"cfg\":10,\"fp\":100}\n{\"i\":1,\"cfg\":11,\"fp\":101}";
        let ingest = ingest_jsonl(text, "test").unwrap();
        assert_eq!(ingest.rows.len(), 1);
        assert!(
            ingest.warnings[0].contains("torn"),
            "{}",
            ingest.warnings[0]
        );
    }

    #[test]
    fn ingest_errors_on_mid_file_corruption_naming_the_line() {
        let text = "{\"i\":0,\"cfg\":10,\"fp\":100}\ngarbage\n{\"i\":2,\"cfg\":12,\"fp\":102}\n";
        let err = ingest_jsonl(text, "rows.jsonl").unwrap_err().to_string();
        assert!(err.contains("rows.jsonl"), "names the source: {err}");
        assert!(err.contains("line 2"), "names the line: {err}");
    }
}
