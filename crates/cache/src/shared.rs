//! Shared last-level cache: one banked, set-associative structure that
//! every core's misses contend in.
//!
//! The private [`crate::hierarchy::CacheHierarchy`] models per-core
//! levels; this module models the layer *below* them that co-running
//! cores and processes share — the CPU's L3, or an NDP vault buffer in
//! front of a memory channel. Two things make sharing real here:
//!
//! * **Banked ports.** Sets are partitioned across `banks` (low set
//!   bits); each bank serves one access per [`SharedConfig::bank_period`]
//!   and requests that land on a busy bank wait, which is the
//!   port-conflict component of co-runner interference.
//! * **Capacity under one roof.** Lines carry the [`Asid`] of the
//!   address space that brought them in, so occupancy-by-ASID reports
//!   show exactly who is squeezing whom out.
//!
//! Inclusion is a policy knob ([`InclusionPolicy`]): inclusive mode
//! expects the owner to **back-invalidate** private copies when a shared
//! line is evicted (the caller orchestrates this — the shared cache
//! cannot reach into private arrays); exclusive mode holds only lines
//! that left the private hierarchy (victim-cache style), and a hit
//! *extracts* the line, moving it back up.
//!
//! Each bank owns a [`MshrFile`], so overlapped misses to one line —
//! e.g. two in-flight page walks fetching the same PTE line — merge
//! onto a single fetch below, and a saturated bank backpressures.

use crate::mshr::{MshrFile, MshrLookup, MshrStats};
use crate::set_assoc::MAX_WAYS;
use core::fmt;
use ndp_types::stats::HitMiss;
use ndp_types::{AccessClass, Asid, Cycles, LineAddr, PhysAddr, RwKind};

/// How the shared cache relates to the private levels above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InclusionPolicy {
    /// Every private line is also resident here; evicting a shared line
    /// back-invalidates the private copies (the caller performs and
    /// reports the invalidation via
    /// [`SharedCache::note_back_invalidation`]).
    Inclusive,
    /// A line lives either in a private cache or here, never both:
    /// demand fills bypass this level, private victims are inserted, and
    /// a hit extracts the line back up.
    Exclusive,
}

impl InclusionPolicy {
    /// All policies, for CLI listings.
    pub const ALL: [InclusionPolicy; 2] = [InclusionPolicy::Inclusive, InclusionPolicy::Exclusive];

    /// Canonical lower-case name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            InclusionPolicy::Inclusive => "inclusive",
            InclusionPolicy::Exclusive => "exclusive",
        }
    }

    /// Parses a (case-insensitive) policy name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for InclusionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static configuration of a shared cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedConfig {
    /// Human-readable name ("shared-L3", "vault-buffer").
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Bank count; sets are partitioned over banks by their low bits.
    pub banks: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Tag+data lookup latency (charged to hits and misses alike — a
    /// miss discovers itself only after the tag check).
    pub latency: Cycles,
    /// Cycles a bank port is occupied per access; a second access to the
    /// same bank within this window waits (the bank-conflict stat).
    pub bank_period: Cycles,
    /// Inclusion relation with the private levels above.
    pub policy: InclusionPolicy,
    /// MSHR registers per bank (outstanding fills below this level).
    pub mshrs_per_bank: usize,
}

impl SharedConfig {
    /// A shared L3 of `kb` KB: 64 B lines, 35-cycle latency (Table I's
    /// L3 latency), 2-cycle bank occupancy.
    #[must_use]
    pub fn l3(kb: u32, ways: u32, banks: u32, policy: InclusionPolicy) -> Self {
        SharedConfig {
            name: "shared-L3",
            size_bytes: u64::from(kb) * 1024,
            ways,
            banks,
            line_bytes: 64,
            latency: Cycles::new(35),
            bank_period: Cycles::new(2),
            policy,
            mshrs_per_bank: 8,
        }
    }

    /// A per-vault buffer of `kb` KB sitting in front of one memory
    /// channel: 8-way, single-banked (the vault port itself is the
    /// arbitration point), short SRAM latency. Memory-side, so the
    /// inclusion policy is nominal — the machine never back-invalidates
    /// on its behalf.
    #[must_use]
    pub fn vault_buffer(kb: u32) -> Self {
        SharedConfig {
            name: "vault-buffer",
            size_bytes: u64::from(kb) * 1024,
            ways: 8,
            banks: 1,
            line_bytes: 64,
            latency: Cycles::new(6),
            bank_period: Cycles::new(2),
            policy: InclusionPolicy::Inclusive,
            mshrs_per_bank: 8,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`SharedConfig::check`]).
    #[must_use]
    pub fn sets(&self) -> usize {
        self.check().expect("invalid shared-cache geometry");
        let lines = self.size_bytes / self.line_bytes;
        (lines / u64::from(self.ways)) as usize
    }

    /// Validates the geometry, returning a message naming the first
    /// problem (used by `SimConfig::validate` so bad CLI knobs die with
    /// a clean error instead of a panic mid-construction).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.ways == 0 || self.ways as usize > MAX_WAYS {
            return Err("shared-cache ways must be in 1..=16");
        }
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines / u64::from(self.ways);
        if sets == 0 || !sets.is_power_of_two() {
            return Err("shared-cache geometry must give a power-of-two set count");
        }
        if self.banks == 0 || !self.banks.is_power_of_two() || u64::from(self.banks) > sets {
            return Err("shared-cache banks must be a power of two no larger than the set count");
        }
        if self.mshrs_per_bank == 0 {
            return Err("shared-cache needs at least one MSHR per bank");
        }
        Ok(())
    }
}

/// Statistics of one shared cache (or the merge of several vault
/// buffers), cleared at the warmup/measurement boundary like every other
/// cache statistic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedStats {
    /// Hits/misses of normal-data accesses.
    pub data: HitMiss,
    /// Hits/misses of metadata (PTE) accesses.
    pub metadata: HitMiss,
    /// Data lines evicted by metadata fills — shared-level pollution.
    pub data_evicted_by_metadata: u64,
    /// Dirty victims pushed out toward memory.
    pub writebacks: u64,
    /// Private writebacks absorbed in place (line present, marked dirty)
    /// instead of travelling to memory.
    pub writebacks_absorbed: u64,
    /// Accesses that found their bank port busy.
    pub bank_conflicts: u64,
    /// Total cycles those accesses waited for the port.
    pub bank_conflict_cycles: u64,
    /// Inclusive evictions that actually invalidated a private copy
    /// (recorded by the owning machine via
    /// [`SharedCache::note_back_invalidation`]).
    pub back_invalidations: u64,
}

impl SharedStats {
    /// Accumulates another cache's counters into this one (merging the
    /// per-vault buffers into one report block).
    pub fn merge(&mut self, other: &SharedStats) {
        self.data.merge(&other.data);
        self.metadata.merge(&other.metadata);
        self.data_evicted_by_metadata += other.data_evicted_by_metadata;
        self.writebacks += other.writebacks;
        self.writebacks_absorbed += other.writebacks_absorbed;
        self.bank_conflicts += other.bank_conflicts;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.back_invalidations += other.back_invalidations;
    }
}

/// Outcome of one shared-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedLookup {
    /// Whether the line was resident.
    pub hit: bool,
    /// Whether the resident copy was dirty. Only meaningful for
    /// exclusive hits, where the extraction hands the dirtiness back up
    /// to the private fill (dropping it would lose a future writeback).
    pub dirty: bool,
    /// For a hit: when the data is available at this cache (bank wait +
    /// latency included). For a miss: when the request may proceed below
    /// (the tag check that discovered the miss is complete).
    pub done: Cycles,
}

/// A victim evicted by a shared-cache fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedVictim {
    /// Line-aligned physical address of the victim.
    pub addr: PhysAddr,
    /// Class of the victim line.
    pub class: AccessClass,
    /// Whether it must be written toward memory.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    class: AccessClass,
    asid: Asid,
    stamp: u64,
}

impl Default for Line {
    fn default() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            class: AccessClass::Data,
            asid: Asid::ZERO,
            stamp: 0,
        }
    }
}

/// A banked, set-associative, ASID-tagged shared cache.
#[derive(Debug, Clone)]
pub struct SharedCache {
    config: SharedConfig,
    sets: usize,
    lines: Vec<Line>,
    /// Per-bank port-busy frontier. A scalar (not a reservation list):
    /// the bank period is a couple of cycles, so processing-order skew
    /// under windowed cores distorts far less than it would for
    /// hundred-cycle DRAM bank occupancy — and stays deterministic.
    bank_busy: Vec<Cycles>,
    mshrs: Vec<MshrFile>,
    tick: u64,
    stats: SharedStats,
}

impl SharedCache {
    /// Builds a shared cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`SharedConfig::check`].
    #[must_use]
    pub fn new(config: SharedConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        let banks = config.banks as usize;
        let mshrs = (0..banks)
            .map(|_| MshrFile::new(config.mshrs_per_bank))
            .collect();
        SharedCache {
            sets,
            lines: vec![Line::default(); sets * ways],
            bank_busy: vec![Cycles::ZERO; banks],
            mshrs,
            tick: 0,
            stats: SharedStats::default(),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SharedConfig {
        &self.config
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// The bank a set belongs to (its low set bits) — a partition: every
    /// set maps to exactly one bank and banks split the sets evenly.
    #[must_use]
    pub fn bank_of_set(&self, set: usize) -> usize {
        set & (self.config.banks as usize - 1)
    }

    /// The bank an address's set belongs to.
    #[must_use]
    pub fn bank_of(&self, addr: PhysAddr) -> usize {
        self.bank_of_set(self.set_and_tag(addr).0)
    }

    fn set_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line_addr = addr.as_u64() / self.config.line_bytes;
        (
            (line_addr as usize) & (self.sets - 1),
            line_addr / self.sets as u64,
        )
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Line] {
        let ways = self.config.ways as usize;
        &mut self.lines[set * ways..(set + 1) * ways]
    }

    /// Waits for the set's bank port and occupies it; returns when the
    /// access actually starts, recording a conflict if it had to wait.
    fn arbitrate(&mut self, bank: usize, now: Cycles) -> Cycles {
        let busy = self.bank_busy[bank];
        let start = now.max(busy);
        if busy > now {
            self.stats.bank_conflicts += 1;
            self.stats.bank_conflict_cycles += (busy - now).as_u64();
        }
        self.bank_busy[bank] = start + self.config.bank_period;
        start
    }

    /// One demand access at `now` on behalf of `asid`, recording
    /// per-class hit/miss statistics and bank-port contention. Under the
    /// exclusive policy a hit *extracts* the line (it moves back into
    /// the private hierarchy); the returned `dirty` flag carries the
    /// extracted copy's dirtiness up with it.
    pub fn access(
        &mut self,
        addr: PhysAddr,
        rw: RwKind,
        class: AccessClass,
        now: Cycles,
    ) -> SharedLookup {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let bank = self.bank_of_set(set);
        let start = self.arbitrate(bank, now);
        let latency = self.config.latency;
        let exclusive = self.config.policy == InclusionPolicy::Exclusive;
        let lines = self.set_slice_mut(set);
        let mut hit = false;
        let mut dirty = false;
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            hit = true;
            if exclusive {
                dirty = line.dirty;
                *line = Line::default();
            } else {
                line.stamp = tick;
                if rw.is_write() {
                    line.dirty = true;
                }
            }
        }
        match class {
            AccessClass::Data => self.stats.data.record(hit),
            AccessClass::Metadata => self.stats.metadata.record(hit),
        }
        SharedLookup {
            hit,
            dirty,
            done: start + latency,
        }
    }

    /// Checks residency without perturbing state or statistics.
    #[must_use]
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs a line for `asid` (a demand fill under the inclusive
    /// policy, a private victim under the exclusive one), evicting the
    /// set's LRU line if full. The caller routes the victim: dirty ones
    /// go toward memory, and inclusive owners back-invalidate private
    /// copies.
    pub fn fill(
        &mut self,
        addr: PhysAddr,
        class: AccessClass,
        asid: Asid,
        dirty: bool,
    ) -> Option<SharedVictim> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let line_bytes = self.config.line_bytes;
        let sets = self.sets as u64;
        let lines = self.set_slice_mut(set);

        // Already resident (racing fills): refresh in place.
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = tick;
            line.dirty |= dirty;
            line.class = class;
            line.asid = asid;
            return None;
        }

        // Invalid way first, else LRU.
        let victim_way = lines
            .iter()
            .enumerate()
            .find(|(_, l)| !l.valid)
            .map_or_else(
                || {
                    lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(i, _)| i)
                        .expect("sets are non-empty")
                },
                |(i, _)| i,
            );
        let victim = &mut lines[victim_way];
        let mut evicted = None;
        let mut pollution = false;
        if victim.valid {
            if victim.class == AccessClass::Data && class.is_metadata() {
                pollution = true;
            }
            let victim_line = victim.tag * sets + set as u64;
            evicted = Some(SharedVictim {
                addr: PhysAddr::new(victim_line * line_bytes),
                class: victim.class,
                dirty: victim.dirty,
            });
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            class,
            asid,
            stamp: tick,
        };
        if pollution {
            self.stats.data_evicted_by_metadata += 1;
        }
        if evicted.is_some_and(|v| v.dirty) {
            self.stats.writebacks += 1;
        }
        evicted
    }

    /// Absorbs a posted private writeback: if the line is resident it is
    /// marked dirty here (the write travels no further) and `true` comes
    /// back; otherwise the caller forwards the write toward memory.
    pub fn accept_writeback(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let lines = self.set_slice_mut(set);
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
            self.stats.writebacks_absorbed += 1;
            true
        } else {
            false
        }
    }

    /// Records that an inclusive eviction invalidated a private copy
    /// (the owning machine performs the invalidation — this cache only
    /// keeps the count).
    pub fn note_back_invalidation(&mut self) {
        self.stats.back_invalidations += 1;
    }

    /// Probes the evicting bank's MSHR file for a miss observed at
    /// `now` — same contract as the private
    /// [`crate::hierarchy::CacheHierarchy::probe_mshrs`].
    pub fn probe_mshrs(&mut self, addr: PhysAddr, now: Cycles) -> MshrLookup {
        let bank = self.bank_of(addr);
        self.mshrs[bank].probe(LineAddr::of(addr), now)
    }

    /// The completion time of an in-flight fill covering `addr`, if any
    /// (hit-under-miss on a line installed at fill issue).
    pub fn in_flight_fill(&mut self, addr: PhysAddr, now: Cycles) -> Option<Cycles> {
        let bank = self.bank_of(addr);
        self.mshrs[bank].fill_in_flight(LineAddr::of(addr), now)
    }

    /// Registers a primary-miss fetch sent below at `sent`, landing at
    /// `done`, in the owning bank's MSHR file.
    pub fn register_fill(&mut self, addr: PhysAddr, sent: Cycles, done: Cycles) {
        let bank = self.bank_of(addr);
        self.mshrs[bank].allocate(LineAddr::of(addr), sent, done);
    }

    /// Aggregated MSHR statistics over every bank.
    #[must_use]
    pub fn mshr_totals(&self) -> MshrStats {
        let mut total = MshrStats::default();
        for file in &self.mshrs {
            let s = file.stats();
            total.allocated += s.allocated;
            total.coalesced += s.coalesced;
            total.full_stalls += s.full_stalls;
            total.full_stall_cycles += s.full_stall_cycles;
        }
        total
    }

    /// Valid lines currently resident.
    #[must_use]
    pub fn live_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Live lines per owning ASID, sorted by ASID — always sums to
    /// [`SharedCache::live_lines`].
    #[must_use]
    pub fn occupancy_by_asid(&self) -> Vec<(Asid, u64)> {
        let mut by_asid: std::collections::BTreeMap<Asid, u64> = std::collections::BTreeMap::new();
        for line in self.lines.iter().filter(|l| l.valid) {
            *by_asid.entry(line.asid).or_default() += 1;
        }
        by_asid.into_iter().collect()
    }

    /// Clears contents, timing state and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.bank_busy.fill(Cycles::ZERO);
        for file in &mut self.mshrs {
            file.reset();
        }
        self.tick = 0;
        self.stats = SharedStats::default();
    }

    /// Clears statistics (including per-bank MSHR stats), preserving
    /// contents, port frontiers and in-flight fills — the
    /// warmup/measurement boundary.
    pub fn clear_stats(&mut self) {
        for file in &mut self.mshrs {
            file.clear_stats();
        }
        self.stats = SharedStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: InclusionPolicy) -> SharedCache {
        // 4 sets x 2 ways x 64 B = 512 B, 2 banks.
        SharedCache::new(SharedConfig {
            name: "tiny-shared",
            size_bytes: 512,
            ways: 2,
            banks: 2,
            line_bytes: 64,
            latency: Cycles::new(10),
            bank_period: Cycles::new(2),
            policy,
            mshrs_per_bank: 2,
        })
    }

    #[test]
    fn miss_fill_hit_and_class_stats() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        let a = PhysAddr::new(0x1000);
        let miss = c.access(a, RwKind::Read, AccessClass::Data, Cycles::ZERO);
        assert!(!miss.hit);
        assert_eq!(miss.done, Cycles::new(10));
        c.fill(a, AccessClass::Data, Asid(1), false);
        let hit = c.access(a, RwKind::Read, AccessClass::Data, Cycles::new(100));
        assert!(hit.hit);
        assert_eq!(c.stats().data.hits, 1);
        assert_eq!(c.stats().data.misses, 1);
        assert_eq!(c.occupancy_by_asid(), vec![(Asid(1), 1)]);
    }

    #[test]
    fn bank_conflicts_are_counted_and_waited_out() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        // Two back-to-back accesses to the same bank (same set) at the
        // same instant: the second waits out the 2-cycle port period.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(4 * 64); // set 0 again (4 sets)
        let first = c.access(a, RwKind::Read, AccessClass::Data, Cycles::ZERO);
        let second = c.access(b, RwKind::Read, AccessClass::Data, Cycles::ZERO);
        assert_eq!(first.done, Cycles::new(10));
        assert_eq!(second.done, Cycles::new(12), "port wait adds 2");
        assert_eq!(c.stats().bank_conflicts, 1);
        assert_eq!(c.stats().bank_conflict_cycles, 2);
        // A different bank at the same instant does not wait.
        let other = c.access(
            PhysAddr::new(64),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert_eq!(other.done, Cycles::new(10));
        assert_eq!(c.stats().bank_conflicts, 1);
    }

    #[test]
    fn exclusive_hit_extracts_the_line() {
        let mut c = tiny(InclusionPolicy::Exclusive);
        let a = PhysAddr::new(0x80);
        c.fill(a, AccessClass::Data, Asid::ZERO, true);
        let hit = c.access(a, RwKind::Read, AccessClass::Data, Cycles::ZERO);
        assert!(hit.hit);
        assert!(hit.dirty, "extraction carries dirtiness up");
        assert!(!c.probe(a), "exclusive hit removes the line");
        assert_eq!(c.live_lines(), 0);
    }

    #[test]
    fn fill_evicts_lru_and_reports_dirty_victims() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        let a = PhysAddr::new(0); // set 0
        let b = PhysAddr::new(4 * 64); // set 0
        let d = PhysAddr::new(8 * 64); // set 0
        c.fill(a, AccessClass::Data, Asid::ZERO, true);
        c.fill(b, AccessClass::Data, Asid::ZERO, false);
        let victim = c.fill(d, AccessClass::Metadata, Asid::ZERO, false);
        assert_eq!(
            victim,
            Some(SharedVictim {
                addr: a,
                class: AccessClass::Data,
                dirty: true
            })
        );
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(
            c.stats().data_evicted_by_metadata,
            1,
            "metadata evicted data"
        );
    }

    #[test]
    fn writeback_absorbed_only_when_resident() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        let a = PhysAddr::new(0x40);
        assert!(!c.accept_writeback(a), "absent line forwards to memory");
        c.fill(a, AccessClass::Data, Asid::ZERO, false);
        assert!(c.accept_writeback(a));
        assert_eq!(c.stats().writebacks_absorbed, 1);
        // The absorbed write made the line dirty: evicting it (same set:
        // lines 5 and 9 also map to set 1) writes back.
        c.fill(PhysAddr::new(5 * 64), AccessClass::Data, Asid::ZERO, false);
        let v = c.fill(PhysAddr::new(9 * 64), AccessClass::Data, Asid::ZERO, false);
        assert!(v.is_some_and(|v| v.dirty));
    }

    #[test]
    fn bank_mapping_partitions_sets() {
        let c = tiny(InclusionPolicy::Inclusive);
        let mut per_bank = vec![0usize; 2];
        for set in 0..c.sets() {
            per_bank[c.bank_of_set(set)] += 1;
        }
        assert_eq!(per_bank, vec![2, 2], "even split of 4 sets over 2 banks");
    }

    #[test]
    fn occupancy_sums_to_live_lines() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        c.fill(PhysAddr::new(0), AccessClass::Data, Asid(0), false);
        c.fill(PhysAddr::new(64), AccessClass::Data, Asid(1), false);
        c.fill(PhysAddr::new(128), AccessClass::Metadata, Asid(1), false);
        let occ = c.occupancy_by_asid();
        assert_eq!(occ.iter().map(|(_, n)| n).sum::<u64>(), c.live_lines());
        assert_eq!(occ, vec![(Asid(0), 1), (Asid(1), 2)]);
    }

    #[test]
    fn mshrs_coalesce_per_bank() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        let a = PhysAddr::new(0);
        assert_eq!(c.probe_mshrs(a, Cycles::ZERO), MshrLookup::Free);
        c.register_fill(a, Cycles::ZERO, Cycles::new(200));
        assert_eq!(
            c.probe_mshrs(a, Cycles::new(50)),
            MshrLookup::Coalesced(Cycles::new(200))
        );
        assert_eq!(c.mshr_totals().coalesced, 1);
        assert_eq!(
            c.in_flight_fill(a, Cycles::new(100)),
            Some(Cycles::new(200))
        );
    }

    #[test]
    fn clear_stats_preserves_contents() {
        let mut c = tiny(InclusionPolicy::Inclusive);
        let a = PhysAddr::new(0);
        c.access(a, RwKind::Read, AccessClass::Data, Cycles::ZERO);
        c.fill(a, AccessClass::Data, Asid(3), false);
        c.clear_stats();
        assert_eq!(c.stats().data.total(), 0);
        assert!(c.probe(a), "contents survive");
        c.reset();
        assert!(!c.probe(a));
        assert_eq!(c.live_lines(), 0);
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in InclusionPolicy::ALL {
            assert_eq!(InclusionPolicy::parse(p.name()), Some(p));
            assert_eq!(InclusionPolicy::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(InclusionPolicy::parse("bogus"), None);
        assert_eq!(InclusionPolicy::Exclusive.to_string(), "exclusive");
    }

    #[test]
    #[should_panic(expected = "invalid shared-cache geometry")]
    fn bad_geometry_rejected() {
        let mut cfg = SharedConfig::l3(1024, 16, 8, InclusionPolicy::Inclusive);
        cfg.size_bytes = 192;
        let _ = SharedCache::new(cfg);
    }

    #[test]
    fn config_check_names_each_constraint() {
        let good = SharedConfig::l3(2048, 16, 8, InclusionPolicy::Inclusive);
        assert!(good.check().is_ok());
        let mut bad = good.clone();
        bad.ways = 32;
        assert!(bad.check().unwrap_err().contains("ways"));
        let mut bad = good.clone();
        bad.banks = 3;
        assert!(bad.check().unwrap_err().contains("banks"));
        let mut bad = good.clone();
        bad.size_bytes = 100;
        assert!(bad.check().unwrap_err().contains("power-of-two"));
        let mut bad = good;
        bad.mshrs_per_bank = 0;
        assert!(bad.check().unwrap_err().contains("MSHR"));
    }
}
