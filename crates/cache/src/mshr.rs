//! Miss-status holding registers: the structure that lets one core keep
//! several cache misses in flight.
//!
//! Each entry tracks one outstanding *line* fill and the timestamp its
//! data arrives. A second miss to the same line while the fill is in
//! flight **coalesces**: it piggybacks on the existing entry's completion
//! and sends nothing to memory (the paper's NDP cores are simple, but any
//! non-blocking memory stage needs exactly this file — without it,
//! overlapped same-line misses would each pay a DRAM round trip that real
//! hardware issues once).
//!
//! The file is a timing structure, not a functional one: entries free
//! themselves implicitly once simulated time passes their fill time, so
//! the file needs no explicit retire call and stays deterministic under
//! any interleaving the simulator produces.

use ndp_types::{Cycles, LineAddr};

/// Outcome of probing the MSHR file for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrLookup {
    /// The line is already being fetched; the miss merges into that entry
    /// and its data arrives at the contained timestamp.
    Coalesced(Cycles),
    /// No entry covers the line and a register is free: the caller must
    /// fetch from memory and then [`MshrFile::allocate`] the fill.
    Free,
    /// No entry covers the line and every register is busy; the fetch
    /// cannot start before the contained timestamp (the earliest entry to
    /// free). Structural backpressure: the miss still happens, later.
    Full(Cycles),
}

/// Statistics accumulated by one MSHR file.
#[derive(Debug, Clone, Copy, Default)]
pub struct MshrStats {
    /// Fills allocated (primary misses sent to memory).
    pub allocated: u64,
    /// Misses merged into an in-flight fill (no memory request issued).
    pub coalesced: u64,
    /// Misses that found the file full and had to wait for a register.
    pub full_stalls: u64,
    /// Total cycles those misses waited for a free register.
    pub full_stall_cycles: u64,
}

/// Completed-fill records retained beyond the register count. The
/// simulator processes a core's ops in *issue* order while their
/// timestamps interleave (an op's data access can carry an earlier time
/// than the previously processed op's), so a record must survive until
/// no earlier-timestamped probe can still need it — one full issue
/// window (≤ 64 ops) bounds that distance.
const HISTORY_SLACK: usize = 64;

/// A fixed-capacity file of in-flight line fills.
///
/// `capacity` bounds the *live* fills (the hardware registers); the
/// backing list additionally retains up to [`HISTORY_SLACK`] expired
/// records so that probes processed later but timestamped earlier still
/// observe fills that were in flight at their instant.
#[derive(Debug, Clone)]
pub struct MshrFile {
    /// Record lines, parallel to `dones` (struct-of-arrays: the live-fill
    /// and occupancy scans each touch only the array they test, and both
    /// stay small — ≤ capacity + [`HISTORY_SLACK`] — and branch-light).
    lines: Vec<LineAddr>,
    /// Fill-completion time of each record, parallel to `lines`.
    dones: Vec<Cycles>,
    capacity: usize,
    stats: MshrStats,
}

impl MshrFile {
    /// A file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a non-blocking cache needs at least
    /// one register (capacity 1 reproduces a blocking cache exactly: the
    /// sole fill always completes before the next blocking access issues).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        MshrFile {
            lines: Vec::with_capacity(capacity),
            dones: Vec::with_capacity(capacity),
            capacity,
            stats: MshrStats::default(),
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Registers still occupied at `now` (fills not yet complete).
    #[must_use]
    pub fn in_flight(&self, now: Cycles) -> usize {
        self.dones.iter().filter(|&&done| done > now).count()
    }

    /// The completion time of an in-flight fill covering `line`, if one
    /// exists at `now`. A `Some` is a **merge** — the caller's access
    /// piggybacks on that fill — and is counted as coalesced. Used both
    /// by [`MshrFile::probe`] and directly for hit-under-miss: the
    /// functional cache installs a line the moment its fill is *issued*,
    /// so a later access that "hits" the line must still wait for the
    /// in-flight data if the fill has not landed yet.
    pub fn fill_in_flight(&mut self, line: LineAddr, now: Cycles) -> Option<Cycles> {
        let done = self
            .lines
            .iter()
            .zip(&self.dones)
            .find(|&(&l, &done)| l == line && done > now)
            .map(|(_, &done)| done);
        if done.is_some() {
            self.stats.coalesced += 1;
        }
        done
    }

    /// Probes the file for a miss on `line` observed at `now`, recording
    /// statistics. See [`MshrLookup`] for the three outcomes. A `Full`
    /// result does **not** reserve anything — the caller re-issues the
    /// fetch at the returned time and allocates then.
    pub fn probe(&mut self, line: LineAddr, now: Cycles) -> MshrLookup {
        if let Some(done) = self.fill_in_flight(line, now) {
            return MshrLookup::Coalesced(done);
        }
        if self.in_flight(now) < self.capacity() {
            return MshrLookup::Free;
        }
        // The file frees up once enough live fills land that the count
        // drops below capacity. Probes are processed in issue order but
        // timestamped out of order, so more than `capacity` fills can be
        // live at this probe's instant — the wait must cover all the
        // excess, not just the earliest completion. (Expired history
        // records are skipped; their times are in the past.)
        let mut live: Vec<Cycles> = self
            .dones
            .iter()
            .filter(|&&done| done > now)
            .copied()
            .collect();
        live.sort_unstable();
        let free_at = live[live.len() - self.capacity];
        self.stats.full_stalls += 1;
        self.stats.full_stall_cycles += (free_at - now).as_u64();
        MshrLookup::Full(free_at)
    }

    /// Records a primary-miss fill for `line` completing at `done`.
    ///
    /// Call after a [`MshrLookup::Free`] probe (or after waiting out a
    /// [`MshrLookup::Full`]); `now` is when the fetch was actually sent.
    /// Records are never overwritten in place — an expired register's
    /// *record* may still be needed by a probe that is processed later
    /// but timestamped earlier (see [`HISTORY_SLACK`]); instead the
    /// oldest-completing record is evicted once the history is full.
    pub fn allocate(&mut self, line: LineAddr, now: Cycles, done: Cycles) {
        debug_assert!(self.in_flight(now) < self.capacity, "no free register");
        self.stats.allocated += 1;
        self.lines.push(line);
        self.dones.push(done);
        if self.dones.len() > self.capacity + HISTORY_SLACK {
            let oldest = self
                .dones
                .iter()
                .enumerate()
                .min_by_key(|&(_, &d)| d)
                .map(|(i, _)| i)
                .expect("non-empty list");
            self.lines.swap_remove(oldest);
            self.dones.swap_remove(oldest);
        }
    }

    /// Clears in-flight entries and statistics.
    pub fn reset(&mut self) {
        self.lines.clear();
        self.dones.clear();
        self.stats = MshrStats::default();
    }

    /// Clears statistics, keeping in-flight entries.
    pub fn clear_stats(&mut self) {
        self.stats = MshrStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::PhysAddr;

    fn line(addr: u64) -> LineAddr {
        LineAddr::of(PhysAddr::new(addr))
    }

    #[test]
    fn same_line_misses_share_one_fill() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.probe(line(0x1000), Cycles::new(10)), MshrLookup::Free);
        m.allocate(line(0x1000), Cycles::new(10), Cycles::new(150));
        // Another word of the same line while the fill is in flight.
        assert_eq!(
            m.probe(line(0x1020), Cycles::new(50)),
            MshrLookup::Coalesced(Cycles::new(150)),
            "same 64 B line merges"
        );
        assert_eq!(m.stats().allocated, 1);
        assert_eq!(m.stats().coalesced, 1);
        // A different line does not merge.
        assert_eq!(m.probe(line(0x1040), Cycles::new(50)), MshrLookup::Free);
    }

    #[test]
    fn entries_expire_when_time_passes() {
        let mut m = MshrFile::new(1);
        m.allocate(line(0x0), Cycles::ZERO, Cycles::new(100));
        // At exactly the completion time the register is free again (the
        // data has arrived), so no coalescing and no stall.
        assert_eq!(m.probe(line(0x0), Cycles::new(100)), MshrLookup::Free);
        assert_eq!(m.in_flight(Cycles::new(100)), 0);
        assert_eq!(m.in_flight(Cycles::new(99)), 1);
    }

    #[test]
    fn full_file_backpressures_until_earliest_free() {
        let mut m = MshrFile::new(2);
        m.allocate(line(0x0), Cycles::ZERO, Cycles::new(300));
        m.allocate(line(0x40), Cycles::ZERO, Cycles::new(200));
        assert_eq!(
            m.probe(line(0x80), Cycles::new(50)),
            MshrLookup::Full(Cycles::new(200)),
            "earliest completion gates the next fetch"
        );
        assert_eq!(m.stats().full_stalls, 1);
        assert_eq!(m.stats().full_stall_cycles, 150);
        // Once the earliest fill lands, a register is free and the slot is
        // reused rather than growing the file.
        assert_eq!(m.probe(line(0x80), Cycles::new(200)), MshrLookup::Free);
        m.allocate(line(0x80), Cycles::new(200), Cycles::new(400));
        assert_eq!(m.in_flight(Cycles::new(250)), 2);
    }

    #[test]
    fn capacity_one_never_coalesces_under_blocking_use() {
        // The blocking engine only issues the next access after the
        // previous fill completed, so a 1-register file behaves as if it
        // were not there: every probe is Free.
        let mut m = MshrFile::new(1);
        let mut now = Cycles::ZERO;
        for i in 0..8u64 {
            assert_eq!(m.probe(line(i * 64), now), MshrLookup::Free);
            let done = now + Cycles::new(100);
            m.allocate(line(i * 64), now, done);
            now = done; // blocking: wait out the fill
        }
        assert_eq!(m.stats().coalesced, 0);
        assert_eq!(m.stats().full_stalls, 0);
    }

    #[test]
    fn records_survive_register_reuse_for_earlier_timestamped_probes() {
        // Processing order ≠ timestamp order: op B's fetch can be sent at
        // t=500 (waiting out a full file) before op C's hit at t=112 is
        // processed. Reusing X's register must not erase X's record — C
        // still needs to see that X's fill is in flight at t=112.
        let mut m = MshrFile::new(1);
        m.allocate(line(0x0), Cycles::ZERO, Cycles::new(500)); // X
        assert_eq!(m.probe(line(0x40), Cycles::new(500)), MshrLookup::Free);
        m.allocate(line(0x40), Cycles::new(500), Cycles::new(900)); // Y
        assert_eq!(
            m.fill_in_flight(line(0x0), Cycles::new(112)),
            Some(Cycles::new(500)),
            "X's in-flight record must survive Y's allocation"
        );
        assert_eq!(m.fill_in_flight(line(0x0), Cycles::new(500)), None);
    }

    #[test]
    fn history_is_bounded() {
        let mut m = MshrFile::new(2);
        let mut now = Cycles::ZERO;
        for i in 0..(2 * (2 + HISTORY_SLACK) as u64) {
            m.allocate(line(i * 64), now, now + Cycles::new(10));
            now += Cycles::new(10);
        }
        assert!(m.lines.len() <= 2 + HISTORY_SLACK);
        assert!(m.in_flight(now - Cycles::new(5)) >= 1, "newest survives");
    }

    #[test]
    fn reset_and_clear_stats() {
        let mut m = MshrFile::new(2);
        m.allocate(line(0x0), Cycles::ZERO, Cycles::new(100));
        m.probe(line(0x0), Cycles::new(10));
        m.clear_stats();
        assert_eq!(m.stats().coalesced, 0);
        assert_eq!(m.in_flight(Cycles::new(10)), 1, "entries survive");
        m.reset();
        assert_eq!(m.in_flight(Cycles::new(10)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
