//! Replacement policies for the set-associative cache model.

/// Which line of a set to evict on a fill.
///
/// LRU is the paper's (and Sniper's) default; FIFO and a cheap deterministic
/// pseudo-random policy are provided for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line.
    #[default]
    Lru,
    /// Evict the line filled longest ago regardless of reuse.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift on a counter).
    Random,
}

impl ReplacementPolicy {
    /// Picks a victim way given per-way metadata.
    ///
    /// * `valid` — which ways currently hold a line (invalid ways win
    ///   immediately, lowest index first).
    /// * `stamp` — per-way recency (LRU) or insertion (FIFO) stamps; lower
    ///   is older.
    /// * `tick` — a monotonically increasing counter used to seed the
    ///   `Random` policy deterministically.
    #[must_use]
    pub fn choose_victim(self, valid: &[bool], stamp: &[u64], tick: u64) -> usize {
        debug_assert_eq!(valid.len(), stamp.len());
        if let Some(way) = valid.iter().position(|v| !v) {
            return way;
        }
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => stamp
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Random => {
                let mut x = tick.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
                x ^= x >> 33;
                (x % valid.len() as u64) as usize
            }
        }
    }

    /// Whether a hit refreshes the way's stamp (true for LRU only).
    #[must_use]
    pub fn touch_on_hit(self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    #[test]
    fn invalid_way_wins() {
        let p = ReplacementPolicy::Lru;
        assert_eq!(p.choose_victim(&[true, false, true], &[5, 0, 9], 0), 1);
    }

    #[test]
    fn lru_evicts_oldest_stamp() {
        let p = ReplacementPolicy::Lru;
        assert_eq!(p.choose_victim(&[true, true, true], &[7, 2, 9], 0), 1);
        assert!(p.touch_on_hit());
    }

    #[test]
    fn fifo_ignores_hits() {
        let p = ReplacementPolicy::Fifo;
        assert_eq!(p.choose_victim(&[true, true], &[3, 1], 0), 1);
        assert!(!p.touch_on_hit());
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let p = ReplacementPolicy::Random;
        let valid = [true; 8];
        let stamp = [0u64; 8];
        for tick in 0..100 {
            let a = p.choose_victim(&valid, &stamp, tick);
            let b = p.choose_victim(&valid, &stamp, tick);
            assert_eq!(a, b);
            assert!(a < 8);
        }
        // Not constant across ticks.
        let picks: FastSet<_> = (0..64)
            .map(|t| p.choose_victim(&valid, &stamp, t))
            .collect();
        assert!(picks.len() > 1);
    }
}
