#![forbid(unsafe_code)]
//! Cache substrate for the NDPage reproduction.
//!
//! Provides a set-associative write-back cache model with **per-class
//! statistics** — every line remembers whether it holds normal data or
//! page-table metadata, so the pollution effects central to the paper's
//! first key observation (§IV-A) can be measured directly:
//!
//! * the L1 miss rate of metadata (~98% in the paper, Fig 7),
//! * the inflation of the *data* miss rate caused by metadata fills
//!   evicting useful data (26.16% → 35.89%, a 1.37× increase).
//!
//! [`hierarchy::CacheHierarchy`] assembles the per-core NDP configuration
//! (a single 32 KB L1) and the CPU configuration (L1 + 512 KB L2 +
//! 2 MB/core L3) from Table I, and owns the core's [`mshr::MshrFile`] —
//! the miss-status holding registers that let a non-blocking core overlap
//! independent misses and coalesce same-line ones onto a single fill.
//!
//! [`shared::SharedCache`] models the layer *below* the private
//! hierarchies that co-running cores and processes genuinely share: a
//! banked shared L3 (inclusive or exclusive of the private levels, with
//! back-invalidation on inclusive eviction) or an NDP per-vault buffer,
//! with per-bank MSHR files and occupancy accounted by [`ndp_types::Asid`].
//!
//! # Examples
//!
//! ```
//! use ndp_cache::hierarchy::CacheHierarchy;
//! use ndp_types::{AccessClass, PhysAddr, RwKind};
//!
//! let mut ndp_l1 = CacheHierarchy::ndp();
//! let addr = PhysAddr::new(0x1000);
//! // Cold miss, then fill, then hit.
//! assert!(!ndp_l1.lookup(addr, RwKind::Read, AccessClass::Data).is_hit());
//! ndp_l1.fill(addr, AccessClass::Data, false);
//! assert!(ndp_l1.lookup(addr, RwKind::Read, AccessClass::Data).is_hit());
//! ```

pub mod hierarchy;
pub mod mshr;
pub mod replacement;
pub mod set_assoc;
pub mod shared;

pub use hierarchy::CacheHierarchy;
pub use mshr::{MshrFile, MshrLookup, MshrStats};
pub use set_assoc::{CacheConfig, CacheStats, SetAssocCache};
pub use shared::{InclusionPolicy, SharedCache, SharedConfig, SharedStats};
