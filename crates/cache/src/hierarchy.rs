//! Multi-level cache assembly: NDP (L1 only) vs CPU (L1+L2+L3).
//!
//! The hierarchy resolves lookups top-down and reports either the hit level
//! (with the accumulated lookup latency) or a full miss (the caller then
//! goes to the memory controller and calls [`CacheHierarchy::fill`]).

use crate::mshr::{MshrFile, MshrLookup, MshrStats};
use crate::set_assoc::{CacheConfig, CacheStats, SetAssocCache, Victim, Writeback};
use ndp_types::{InlineVec, LineAddr};

/// Dirty victims produced by one fill — at most one per cache level, so
/// the list lives inline (a fill happens on every miss; the seed's `Vec`
/// return put an allocation there).
pub type WritebackList = InlineVec<Writeback, 4>;

/// A victim tagged with the level (0 = L1) that evicted it. Victims of
/// the *outermost* private level leave the private hierarchy entirely —
/// those are the ones a shared last level absorbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelVictim {
    /// Index of the evicting level (0 = L1).
    pub level: usize,
    /// The evicted line.
    pub victim: Victim,
}

/// All victims produced by one fill, clean and dirty, one per level at
/// most.
pub type VictimList = InlineVec<LevelVictim, 4>;

/// Result of a back-invalidation sweep across the private levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackInvalidate {
    /// Whether any private level held the line.
    pub present: bool,
    /// Whether any evicted private copy was dirty (its data must still
    /// reach memory or the shared level).
    pub dirty: bool,
}
use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};

/// Outcome of a hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Hit at `level` (0 = L1); `latency` includes every level probed.
    Hit {
        /// Index of the hitting level (0 = L1).
        level: usize,
        /// Accumulated probe latency up to and including the hit.
        latency: Cycles,
    },
    /// Missed every level; `lookup_latency` is the cost of probing them all.
    MissAll {
        /// Accumulated probe latency of all levels.
        lookup_latency: Cycles,
    },
}

impl LookupResult {
    /// Whether any level hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, LookupResult::Hit { .. })
    }

    /// Latency spent probing, regardless of outcome.
    #[must_use]
    pub fn latency(self) -> Cycles {
        match self {
            LookupResult::Hit { latency, .. } => latency,
            LookupResult::MissAll { lookup_latency } => lookup_latency,
        }
    }
}

/// An inclusive-enough multi-level cache (fills install in every level,
/// evictions are independent — adequate for miss-rate and latency studies;
/// the paper's bypass concern about inclusion does not arise in NDP's
/// single-level hierarchy, §V-A).
///
/// The hierarchy additionally owns the core's [`MshrFile`]: misses that
/// reach memory register their in-flight fill here so overlapped misses
/// to the same line coalesce ([`CacheHierarchy::probe_mshrs`]) and a full
/// file backpressures further misses. The default single register
/// reproduces a blocking cache exactly; [`CacheHierarchy::with_mshrs`]
/// widens it.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<SetAssocCache>,
    mshrs: MshrFile,
}

impl CacheHierarchy {
    /// Builds a hierarchy from level configurations, outermost last, with
    /// a single (blocking-equivalent) MSHR.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or any geometry is invalid.
    #[must_use]
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        // fill() collects at most one dirty victim per level into a
        // WritebackList; bound the depth at construction.
        assert!(
            configs.len() <= 4,
            "hierarchy supports at most 4 levels (WritebackList capacity)"
        );
        CacheHierarchy {
            levels: configs.into_iter().map(SetAssocCache::new).collect(),
            mshrs: MshrFile::new(1),
        }
    }

    /// Replaces the MSHR file with one of `registers` entries (the
    /// `mshrs_per_core` knob).
    ///
    /// # Panics
    ///
    /// Panics if `registers` is zero.
    #[must_use]
    pub fn with_mshrs(mut self, registers: usize) -> Self {
        self.mshrs = MshrFile::new(registers);
        self
    }

    /// The NDP per-core hierarchy from Table I: a single 32 KB L1.
    #[must_use]
    pub fn ndp() -> Self {
        CacheHierarchy::new(vec![CacheConfig::l1d()])
    }

    /// The CPU per-core hierarchy from Table I: L1 + L2 + (shared) L3.
    ///
    /// The L3 is sized `2 MB × cores`; in this per-core model each core gets
    /// a private slice of the same total capacity, a standard simplification.
    #[must_use]
    pub fn cpu(cores: u32) -> Self {
        CacheHierarchy::new(vec![
            CacheConfig::l1d(),
            CacheConfig::l2(),
            CacheConfig::l3(cores),
        ])
    }

    /// Number of levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Statistics of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn level_stats(&self, level: usize) -> &CacheStats {
        self.levels[level].stats()
    }

    /// Configuration of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn level_config(&self, level: usize) -> &CacheConfig {
        self.levels[level].config()
    }

    /// Checks residency in any level without perturbing state or
    /// statistics (invariant checks; the timing path uses
    /// [`CacheHierarchy::lookup`]).
    #[must_use]
    pub fn probe(&self, addr: PhysAddr) -> bool {
        self.levels.iter().any(|level| level.probe(addr))
    }

    /// Probes levels in order until a hit; records per-level hit/miss stats.
    pub fn lookup(&mut self, addr: PhysAddr, rw: RwKind, class: AccessClass) -> LookupResult {
        let mut latency = Cycles::ZERO;
        for (idx, level) in self.levels.iter_mut().enumerate() {
            latency += level.config().latency;
            if level.access(addr, rw, class) {
                return LookupResult::Hit {
                    level: idx,
                    latency,
                };
            }
        }
        LookupResult::MissAll {
            lookup_latency: latency,
        }
    }

    /// Probes the MSHR file for a miss on `addr`'s line observed at `now`
    /// (after the lookup latency). `Coalesced` misses piggyback on an
    /// in-flight fill; `Free`/`Full` callers fetch from memory (waiting
    /// out a `Full` first) and then call [`CacheHierarchy::register_fill`].
    pub fn probe_mshrs(&mut self, addr: PhysAddr, now: Cycles) -> MshrLookup {
        self.mshrs.probe(LineAddr::of(addr), now)
    }

    /// Registers a primary-miss fill for `addr`'s line, sent to memory at
    /// `sent` and completing at `done`.
    pub fn register_fill(&mut self, addr: PhysAddr, sent: Cycles, done: Cycles) {
        self.mshrs.allocate(LineAddr::of(addr), sent, done);
    }

    /// The completion time of an in-flight fill covering `addr`'s line at
    /// `now`, if any; counts as a coalesced merge (hit-under-miss).
    pub fn in_flight_fill(&mut self, addr: PhysAddr, now: Cycles) -> Option<Cycles> {
        self.mshrs.fill_in_flight(LineAddr::of(addr), now)
    }

    /// Statistics of the MSHR file.
    #[must_use]
    pub fn mshr_stats(&self) -> &MshrStats {
        self.mshrs.stats()
    }

    /// Installs a line in every level after a memory fill, collecting any
    /// dirty victims that must be written back to memory.
    pub fn fill(&mut self, addr: PhysAddr, class: AccessClass, dirty: bool) -> WritebackList {
        self.levels
            .iter_mut()
            .filter_map(|level| level.fill(addr, class, dirty))
            .collect()
    }

    /// Installs a line only in levels at or below `from_level` (e.g. fill
    /// L2/L3 but not L1 — used for partial-bypass ablations).
    pub fn fill_from(
        &mut self,
        from_level: usize,
        addr: PhysAddr,
        class: AccessClass,
        dirty: bool,
    ) -> WritebackList {
        self.levels
            .iter_mut()
            .skip(from_level)
            .filter_map(|level| level.fill(addr, class, dirty))
            .collect()
    }

    /// Installs a line in every level like [`CacheHierarchy::fill`], but
    /// reports *every* victim — clean ones included — tagged with the
    /// level that evicted it. A shared last level underneath needs this
    /// richer view: outermost-level victims leave the private hierarchy
    /// (exclusive LLCs are filled by exactly those), inner-level victims
    /// are still resident further out. Statistics are identical to
    /// [`CacheHierarchy::fill`].
    pub fn fill_collect(&mut self, addr: PhysAddr, class: AccessClass, dirty: bool) -> VictimList {
        self.levels
            .iter_mut()
            .enumerate()
            .filter_map(|(level, cache)| {
                cache
                    .fill_victim(addr, class, dirty)
                    .map(|victim| LevelVictim { level, victim })
            })
            .collect()
    }

    /// Invalidates a line in every private level on behalf of an
    /// inclusive shared cache that just evicted it, reporting whether any
    /// level held the line and whether any held copy was dirty.
    pub fn back_invalidate(&mut self, addr: PhysAddr) -> BackInvalidate {
        let mut result = BackInvalidate::default();
        for level in &mut self.levels {
            if level.probe(addr) {
                result.present = true;
                if level.invalidate(addr) {
                    result.dirty = true;
                }
            }
        }
        result
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&mut self, addr: PhysAddr) {
        for level in &mut self.levels {
            level.invalidate(addr);
        }
    }

    /// Clears contents and statistics of every level, and the MSHR file.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.reset();
        }
        self.mshrs.reset();
    }

    /// Clears statistics of every level (and the MSHR file), preserving
    /// contents and in-flight fills.
    pub fn clear_stats(&mut self) {
        for level in &mut self.levels {
            level.clear_stats();
        }
        self.mshrs.clear_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_has_one_level_cpu_has_three() {
        assert_eq!(CacheHierarchy::ndp().depth(), 1);
        assert_eq!(CacheHierarchy::cpu(4).depth(), 3);
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut h = CacheHierarchy::ndp();
        let a = PhysAddr::new(0x2000);
        let miss = h.lookup(a, RwKind::Read, AccessClass::Data);
        assert!(!miss.is_hit());
        assert_eq!(miss.latency(), Cycles::new(4));
        h.fill(a, AccessClass::Data, false);
        let hit = h.lookup(a, RwKind::Read, AccessClass::Data);
        assert_eq!(
            hit,
            LookupResult::Hit {
                level: 0,
                latency: Cycles::new(4)
            }
        );
    }

    #[test]
    fn cpu_miss_probes_all_levels() {
        let mut h = CacheHierarchy::cpu(1);
        let r = h.lookup(PhysAddr::new(0), RwKind::Read, AccessClass::Data);
        assert_eq!(r.latency(), Cycles::new(4 + 16 + 35));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = CacheHierarchy::cpu(1);
        let a = PhysAddr::new(0);
        h.fill(a, AccessClass::Data, false);
        // Evict `a` from L1 by filling its whole L1 set (8 ways), with
        // addresses that land in different L2/L3 sets.
        for i in 1..=8u64 {
            h.fill(PhysAddr::new(i * 64 * 64), AccessClass::Data, false);
        }
        let r = h.lookup(a, RwKind::Read, AccessClass::Data);
        match r {
            LookupResult::Hit { level, .. } => assert_eq!(level, 1),
            LookupResult::MissAll { .. } => panic!("expected an L2 hit"),
        }
    }

    #[test]
    fn fill_from_skips_l1() {
        let mut h = CacheHierarchy::cpu(1);
        let a = PhysAddr::new(0x40);
        h.fill_from(1, a, AccessClass::Metadata, false);
        let r = h.lookup(a, RwKind::Read, AccessClass::Metadata);
        match r {
            LookupResult::Hit { level, .. } => assert_eq!(level, 1),
            LookupResult::MissAll { .. } => panic!("expected an L2 hit"),
        }
    }

    #[test]
    fn fill_collect_tags_victims_with_their_level() {
        let mut h = CacheHierarchy::ndp(); // one 64-set, 8-way level
                                           // Fill one L1 set to capacity, then once more: the ninth fill
                                           // evicts the clean LRU line and fill_collect reports it.
        for i in 0..=8u64 {
            let victims = h.fill_collect(
                PhysAddr::new(i * 64 * 64),
                AccessClass::Data,
                i == 0, // only the first line is dirty
            );
            if i < 8 {
                assert!(victims.is_empty(), "set not yet full at fill {i}");
            } else {
                assert_eq!(victims.len(), 1);
                let lv = victims.as_slice()[0];
                assert_eq!(lv.level, 0);
                assert_eq!(lv.victim.addr, PhysAddr::new(0));
                assert!(lv.victim.dirty);
            }
        }
    }

    #[test]
    fn back_invalidate_reports_presence_and_dirtiness() {
        let mut h = CacheHierarchy::cpu(1);
        let a = PhysAddr::new(0x140);
        assert_eq!(h.back_invalidate(a), BackInvalidate::default());
        h.fill(a, AccessClass::Data, true);
        let bi = h.back_invalidate(a);
        assert!(bi.present && bi.dirty);
        assert!(!h.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
        // Re-fetched clean: present but clean on the next sweep.
        h.fill(a, AccessClass::Data, false);
        let bi = h.back_invalidate(a);
        assert!(bi.present && !bi.dirty);
    }

    #[test]
    fn invalidate_everywhere() {
        let mut h = CacheHierarchy::cpu(1);
        let a = PhysAddr::new(0x80);
        h.fill(a, AccessClass::Data, false);
        h.invalidate(a);
        assert!(!h.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
    }

    #[test]
    fn reset_clears_all_levels() {
        let mut h = CacheHierarchy::cpu(1);
        h.fill(PhysAddr::new(0), AccessClass::Data, false);
        h.lookup(PhysAddr::new(0), RwKind::Read, AccessClass::Data);
        h.reset();
        assert_eq!(h.level_stats(0).total().total(), 0);
        assert!(!h
            .lookup(PhysAddr::new(0), RwKind::Read, AccessClass::Data)
            .is_hit());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        let _ = CacheHierarchy::new(vec![]);
    }
}
