//! A set-associative, write-back, write-allocate cache with per-class
//! (data vs. metadata) statistics and pollution accounting.

use crate::replacement::ReplacementPolicy;
use ndp_types::addr::CACHE_LINE_SIZE;
use ndp_types::InlineVec;

/// Highest associativity any configuration uses (L2/L3: 16 ways).
pub const MAX_WAYS: usize = 16;
use ndp_types::stats::HitMiss;
use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};

/// Static configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "L2", ...).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 in Table I).
    pub line_bytes: u64,
    /// Lookup/hit latency.
    pub latency: Cycles,
    /// Victim-selection policy.
    pub replacement: ReplacementPolicy,
    /// Insert metadata (PTE) fills at LRU position instead of MRU.
    ///
    /// Models the empirical behaviour of small L1s under streaming,
    /// prefetching cores: PTE lines are evicted before reuse unless they
    /// are genuinely hot (a hit still promotes them). This reproduces the
    /// paper's measured 98.28% L1 miss rate for metadata (Fig 7). Enabled
    /// for L1 configurations; outer levels retain normal insertion.
    pub metadata_lru_insert: bool,
}

impl CacheConfig {
    /// Table I L1 data cache: 32 KB, 8-way, 4-cycle latency.
    #[must_use]
    pub const fn l1d() -> Self {
        CacheConfig {
            name: "L1D",
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: CACHE_LINE_SIZE,
            latency: Cycles::new(4),
            replacement: ReplacementPolicy::Lru,
            metadata_lru_insert: true,
        }
    }

    /// Table I L2: 512 KB, 16-way, 16-cycle latency (CPU system only).
    #[must_use]
    pub const fn l2() -> Self {
        CacheConfig {
            name: "L2",
            size_bytes: 512 * 1024,
            ways: 16,
            line_bytes: CACHE_LINE_SIZE,
            latency: Cycles::new(16),
            replacement: ReplacementPolicy::Lru,
            metadata_lru_insert: false,
        }
    }

    /// Table I L3: 2 MB/core, 16-way, 35-cycle latency (CPU system only).
    #[must_use]
    pub fn l3(cores: u32) -> Self {
        CacheConfig {
            name: "L3",
            size_bytes: u64::from(cores.max(1)) * 2 * 1024 * 1024,
            ways: 16,
            line_bytes: CACHE_LINE_SIZE,
            latency: Cycles::new(35),
            replacement: ReplacementPolicy::Lru,
            metadata_lru_insert: false,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines / u64::from(self.ways);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        sets as usize
    }
}

/// Statistics for one cache level, split by access class.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Hits/misses of normal-data accesses.
    pub data: HitMiss,
    /// Hits/misses of metadata (PTE) accesses.
    pub metadata: HitMiss,
    /// Data lines evicted to make room for metadata fills — the pollution
    /// counter behind Fig 7's data-miss-rate inflation.
    pub data_evicted_by_metadata: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit/miss counters for one class.
    #[must_use]
    pub fn class(&self, class: AccessClass) -> &HitMiss {
        match class {
            AccessClass::Data => &self.data,
            AccessClass::Metadata => &self.metadata,
        }
    }

    /// Combined accesses across classes.
    #[must_use]
    pub fn total(&self) -> HitMiss {
        let mut t = self.data;
        t.merge(&self.metadata);
        t
    }
}

/// A dirty line pushed out of the cache; must be written toward memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Line-aligned physical address of the victim.
    pub addr: PhysAddr,
    /// Class of the victim line.
    pub class: AccessClass,
}

impl Default for Writeback {
    fn default() -> Self {
        Writeback {
            addr: PhysAddr::new(0),
            class: AccessClass::Data,
        }
    }
}

/// Any line pushed out of the cache, clean or dirty. [`Writeback`] only
/// reports dirty victims (all a flat hierarchy needs); a shared
/// exclusive last level additionally wants the clean ones — they are
/// exactly what fills it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned physical address of the victim.
    pub addr: PhysAddr,
    /// Class of the victim line.
    pub class: AccessClass,
    /// Whether the victim must be written toward memory.
    pub dirty: bool,
}

impl Default for Victim {
    fn default() -> Self {
        Victim {
            addr: PhysAddr::new(0),
            class: AccessClass::Data,
            dirty: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    class: AccessClass,
    stamp: u64,
}

impl Default for Line {
    fn default() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            class: AccessClass::Data,
            stamp: 0,
        }
    }
}

/// A single set-associative cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        // fill() gathers way metadata into MAX_WAYS-capacity inline
        // buffers; reject wider configurations here rather than panicking
        // mid-simulation.
        assert!(
            ways <= MAX_WAYS,
            "associativity {ways} exceeds MAX_WAYS ({MAX_WAYS})"
        );
        SetAssocCache {
            config,
            sets,
            lines: vec![Line::default(); sets * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The level configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line_addr = addr.as_u64() / self.config.line_bytes;
        (
            (line_addr as usize) & (self.sets - 1),
            line_addr / self.sets as u64,
        )
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [Line] {
        let ways = self.config.ways as usize;
        &mut self.lines[set * ways..(set + 1) * ways]
    }

    /// Looks up `addr`, recording a hit or miss for `class`. On a hit, the
    /// line's recency is refreshed (per policy) and stores mark it dirty.
    /// Misses do **not** allocate; call [`fill`](Self::fill) once the line
    /// arrives from below.
    pub fn access(&mut self, addr: PhysAddr, rw: RwKind, class: AccessClass) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let touch = self.config.replacement.touch_on_hit();
        let demote_metadata = self.config.metadata_lru_insert;
        let lines = {
            let ways = self.config.ways as usize;
            &mut self.lines[set * ways..(set + 1) * ways]
        };
        let hit = lines.iter_mut().find(|l| l.valid && l.tag == tag);
        let is_hit = if let Some(line) = hit {
            // Metadata in a low-priority (LIP) cache is never promoted:
            // PTE lines behave as streaming dead blocks, matching the
            // paper's measured 98% L1 PTE miss rate under real cores.
            if touch && !(demote_metadata && line.class.is_metadata()) {
                line.stamp = tick;
            }
            if rw.is_write() {
                line.dirty = true;
            }
            true
        } else {
            false
        };
        match class {
            AccessClass::Data => self.stats.data.record(is_hit),
            AccessClass::Metadata => self.stats.metadata.record(is_hit),
        }
        is_hit
    }

    /// Checks residency without perturbing state or statistics.
    #[must_use]
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line for `addr` (after a miss was serviced below),
    /// evicting a victim if the set is full. Returns the victim's writeback
    /// if it was dirty.
    pub fn fill(&mut self, addr: PhysAddr, class: AccessClass, dirty: bool) -> Option<Writeback> {
        self.fill_victim(addr, class, dirty).and_then(|v| {
            v.dirty.then_some(Writeback {
                addr: v.addr,
                class: v.class,
            })
        })
    }

    /// Like [`fill`](Self::fill), but reports the evicted line whether or
    /// not it was dirty — a shared exclusive last level is filled by
    /// private victims, clean ones included. Statistics are identical to
    /// [`fill`](Self::fill) (the `writebacks` counter still only counts
    /// dirty victims).
    pub fn fill_victim(
        &mut self,
        addr: PhysAddr,
        class: AccessClass,
        dirty: bool,
    ) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let line_bytes = self.config.line_bytes;
        let sets = self.sets as u64;
        let policy = self.config.replacement;

        // Already resident (e.g. racing fills): just refresh.
        {
            let lines = self.set_slice_mut(set);
            if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
                line.stamp = tick;
                line.dirty |= dirty;
                line.class = class;
                return None;
            }
        }

        // Way metadata for the victim choice, gathered inline — a fill
        // runs on every miss, so a heap `Vec` here is hot-path traffic.
        let (valid, stamps): (InlineVec<bool, MAX_WAYS>, InlineVec<u64, MAX_WAYS>) = {
            let lines = self.set_slice_mut(set);
            (
                lines.iter().map(|l| l.valid).collect(),
                lines.iter().map(|l| l.stamp).collect(),
            )
        };
        let victim_way = policy.choose_victim(&valid, &stamps, tick);
        // LRU-position insertion for metadata: the new line gets a stamp
        // older than everything resident, so it is the set's next victim
        // unless an access promotes it first.
        let insert_stamp = if self.config.metadata_lru_insert && class.is_metadata() {
            stamps
                .iter()
                .zip(valid.iter())
                .filter(|(_, v)| **v)
                .map(|(s, _)| *s)
                .min()
                .unwrap_or(tick)
                .saturating_sub(1)
        } else {
            tick
        };

        let mut pollution = false;
        let mut evicted = None;
        {
            let lines = self.set_slice_mut(set);
            let victim = &mut lines[victim_way];
            if victim.valid {
                if victim.class == AccessClass::Data && class.is_metadata() {
                    pollution = true;
                }
                let victim_line = victim.tag * sets + set as u64;
                evicted = Some(Victim {
                    addr: PhysAddr::new(victim_line * line_bytes),
                    class: victim.class,
                    dirty: victim.dirty,
                });
            }
            *victim = Line {
                tag,
                valid: true,
                dirty,
                class,
                stamp: insert_stamp,
            };
        }
        if pollution {
            self.stats.data_evicted_by_metadata += 1;
        }
        if evicted.is_some_and(|v| v.dirty) {
            self.stats.writebacks += 1;
        }
        evicted
    }

    /// Drops the line for `addr` if present (e.g. on TLB-shootdown-driven
    /// PTE invalidation), returning whether it was dirty.
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let lines = self.set_slice_mut(set);
        for line in lines {
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                *line = Line::default();
                return was_dirty;
            }
        }
        false
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Clears statistics only, preserving cache contents (used at the
    /// warmup/measurement boundary).
    pub fn clear_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64 B = 256 B.
        SetAssocCache::new(CacheConfig {
            name: "tiny",
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
            metadata_lru_insert: false,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = PhysAddr::new(0x1000);
        assert!(!c.access(a, RwKind::Read, AccessClass::Data));
        c.fill(a, AccessClass::Data, false);
        assert!(c.access(a, RwKind::Read, AccessClass::Data));
        assert_eq!(c.stats().data.hits, 1);
        assert_eq!(c.stats().data.misses, 1);
    }

    #[test]
    fn probe_does_not_change_stats() {
        let mut c = tiny();
        let a = PhysAddr::new(0x40);
        assert!(!c.probe(a));
        c.fill(a, AccessClass::Data, false);
        assert!(c.probe(a));
        assert_eq!(c.stats().total().total(), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to set 0 (set = line_addr & 1, so even lines).
        let a = PhysAddr::new(0); // line 0, set 0
        let b = PhysAddr::new(2 * 64);
        let d = PhysAddr::new(4 * 64);
        c.fill(a, AccessClass::Data, false);
        c.fill(b, AccessClass::Data, false);
        // Touch `a` so `b` becomes LRU.
        c.access(a, RwKind::Read, AccessClass::Data);
        c.fill(d, AccessClass::Data, false);
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_victim_produces_writeback() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(128);
        let d = PhysAddr::new(256);
        c.fill(a, AccessClass::Data, true); // dirty
        c.fill(b, AccessClass::Data, false);
        let wb = c.fill(d, AccessClass::Data, false);
        assert_eq!(
            wb,
            Some(Writeback {
                addr: PhysAddr::new(0),
                class: AccessClass::Data
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        c.fill(a, AccessClass::Data, false);
        c.access(a, RwKind::Write, AccessClass::Data);
        // Evict it and expect a writeback.
        c.fill(PhysAddr::new(128), AccessClass::Data, false);
        let wb = c.fill(PhysAddr::new(256), AccessClass::Data, false);
        assert!(wb.is_some());
    }

    #[test]
    fn metadata_fill_evicting_data_counts_as_pollution() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), AccessClass::Data, false);
        c.fill(PhysAddr::new(128), AccessClass::Data, false);
        c.fill(PhysAddr::new(256), AccessClass::Metadata, false);
        assert_eq!(c.stats().data_evicted_by_metadata, 1);
        // Second metadata fill evicts the remaining data line (pollution=2);
        // a third evicts metadata, which is not pollution.
        c.fill(PhysAddr::new(384), AccessClass::Metadata, false);
        assert_eq!(c.stats().data_evicted_by_metadata, 2);
        c.fill(PhysAddr::new(512), AccessClass::Metadata, false);
        assert_eq!(c.stats().data_evicted_by_metadata, 2);
    }

    #[test]
    fn class_stats_separate() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), RwKind::Read, AccessClass::Metadata);
        c.access(PhysAddr::new(64), RwKind::Read, AccessClass::Data);
        assert_eq!(c.stats().metadata.misses, 1);
        assert_eq!(c.stats().data.misses, 1);
        assert_eq!(c.stats().class(AccessClass::Metadata).misses, 1);
        assert_eq!(c.stats().total().misses, 2);
    }

    #[test]
    fn refill_of_resident_line_is_idempotent() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        c.fill(a, AccessClass::Data, false);
        assert!(c.fill(a, AccessClass::Data, true).is_none());
        // Still resident and now dirty.
        c.fill(PhysAddr::new(128), AccessClass::Data, false);
        let wb = c.fill(PhysAddr::new(256), AccessClass::Data, false);
        assert!(wb.is_some());
    }

    #[test]
    fn fill_victim_reports_clean_victims_too() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(128);
        c.fill(a, AccessClass::Data, false); // clean
        c.fill(b, AccessClass::Data, false);
        let v = c.fill_victim(PhysAddr::new(256), AccessClass::Data, false);
        assert_eq!(
            v,
            Some(Victim {
                addr: a,
                class: AccessClass::Data,
                dirty: false
            }),
            "clean victims surface through fill_victim"
        );
        assert_eq!(c.stats().writebacks, 0, "clean victims are not writebacks");
        // The plain fill API stays dirty-only: re-install `a` dirty
        // (evicting clean `b`), push out the clean 0x100 line silently,
        // then evict dirty `a` and get the writeback.
        c.fill(a, AccessClass::Data, true);
        assert!(c
            .fill(PhysAddr::new(384), AccessClass::Data, false)
            .is_none());
        let wb = c.fill(PhysAddr::new(512), AccessClass::Data, false);
        assert!(wb.is_some(), "dirty victim still reported as writeback");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        c.fill(a, AccessClass::Data, true);
        assert!(c.invalidate(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn reset_clears() {
        let mut c = tiny();
        c.fill(PhysAddr::new(0), AccessClass::Data, false);
        c.access(PhysAddr::new(0), RwKind::Read, AccessClass::Data);
        c.reset();
        assert!(!c.probe(PhysAddr::new(0)));
        assert_eq!(c.stats().total().total(), 0);
    }

    #[test]
    fn table1_presets_geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 512);
        assert_eq!(CacheConfig::l3(4).sets(), 8192);
        assert_eq!(CacheConfig::l1d().latency, Cycles::new(4));
        assert_eq!(CacheConfig::l2().latency, Cycles::new(16));
        assert_eq!(CacheConfig::l3(1).latency, Cycles::new(35));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(CacheConfig {
            name: "bad",
            size_bytes: 192,
            ways: 1,
            line_bytes: 64,
            latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
            metadata_lru_insert: false,
        });
    }
}
