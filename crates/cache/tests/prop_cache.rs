//! Property tests checking the set-associative cache against a reference
//! model (a per-set LRU list) under random access/fill sequences, and
//! the shared last-level cache's structural invariants (inclusion,
//! exclusion, occupancy partition, bank partition) under random streams.

use ndp_cache::hierarchy::CacheHierarchy;
use ndp_cache::replacement::ReplacementPolicy;
use ndp_cache::set_assoc::{CacheConfig, SetAssocCache};
use ndp_cache::shared::{InclusionPolicy, SharedCache, SharedConfig};
use ndp_types::{AccessClass, Asid, Cycles, PhysAddr, RwKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per-set MRU-ordered deque of line addresses.
struct RefCache {
    sets: usize,
    ways: usize,
    lines: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            lines: vec![VecDeque::new(); sets],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / 64) as usize) & (self.sets - 1)
    }

    fn access(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let line = addr / 64;
        let dq = &mut self.lines[set];
        if let Some(pos) = dq.iter().position(|&l| l == line) {
            dq.remove(pos);
            dq.push_front(line);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let line = addr / 64;
        let dq = &mut self.lines[set];
        if let Some(pos) = dq.iter().position(|&l| l == line) {
            dq.remove(pos);
        } else if dq.len() == self.ways {
            dq.pop_back();
        }
        dq.push_front(line);
    }
}

fn tiny_config() -> CacheConfig {
    CacheConfig {
        name: "prop",
        size_bytes: 4096, // 8 sets x 8 ways
        ways: 8,
        line_bytes: 64,
        latency: Cycles::new(1),
        replacement: ReplacementPolicy::Lru,
        metadata_lru_insert: false,
    }
}

/// A deliberately tiny private L1 (2 sets x 2 ways) so random streams
/// evict constantly.
fn prop_l1() -> CacheHierarchy {
    CacheHierarchy::new(vec![CacheConfig {
        name: "prop-L1",
        size_bytes: 256,
        ways: 2,
        line_bytes: 64,
        latency: Cycles::new(1),
        replacement: ReplacementPolicy::Lru,
        metadata_lru_insert: false,
    }])
}

/// A tiny shared L3 (8 sets x 2 ways, 2 banks) under the given policy.
fn prop_l3(policy: InclusionPolicy) -> SharedCache {
    SharedCache::new(SharedConfig {
        name: "prop-L3",
        size_bytes: 1024,
        ways: 2,
        banks: 2,
        line_bytes: 64,
        latency: Cycles::new(5),
        bank_period: Cycles::new(1),
        policy,
        mshrs_per_bank: 2,
    })
}

/// Line-aligned addresses drawn from a pool small enough to thrash both
/// structures.
fn line_of(sel: u64) -> PhysAddr {
    PhysAddr::new((sel % 48) * 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under pure-LRU data traffic, the cache must agree with the
    /// reference model on every hit/miss decision.
    #[test]
    fn matches_reference_lru(addrs in vec(0u64..32_768, 1..400)) {
        let mut cache = SetAssocCache::new(tiny_config());
        let mut reference = RefCache::new(8, 8);
        for &addr in &addrs {
            let a = PhysAddr::new(addr & !63);
            let got = cache.access(a, RwKind::Read, AccessClass::Data);
            let want = reference.access(addr & !63);
            prop_assert_eq!(got, want, "divergence at {:#x}", addr);
            if !got {
                cache.fill(a, AccessClass::Data, false);
            }
            if !want {
                reference.fill(addr & !63);
            }
        }
    }

    /// Statistics identities: hits + misses == accesses; probe never
    /// changes them; resident set size never exceeds capacity.
    #[test]
    fn stats_identities(addrs in vec(0u64..16_384, 1..300)) {
        let mut cache = SetAssocCache::new(tiny_config());
        for &addr in &addrs {
            let a = PhysAddr::new(addr);
            let before = cache.stats().total().total();
            let _ = cache.probe(a);
            prop_assert_eq!(cache.stats().total().total(), before, "probe counted");
            if !cache.access(a, RwKind::Read, AccessClass::Data) {
                cache.fill(a, AccessClass::Data, false);
            }
        }
        prop_assert_eq!(cache.stats().total().total(), addrs.len() as u64);
        // Everything just filled must be resident or evicted — re-probing
        // all addresses can't yield more residents than capacity.
        let resident = addrs
            .iter()
            .map(|&a| a & !63)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|&a| cache.probe(PhysAddr::new(a)))
            .count();
        prop_assert!(resident <= 64, "capacity is 64 lines, found {resident}");
    }

    /// Metadata-LIP mode never changes *correctness* (hit iff resident),
    /// only survival time: a just-filled line is always resident.
    #[test]
    fn lip_mode_is_still_a_cache(ops in vec((0u64..8_192, prop::bool::ANY), 1..300)) {
        let mut cfg = tiny_config();
        cfg.metadata_lru_insert = true;
        let mut cache = SetAssocCache::new(cfg);
        for &(addr, is_meta) in &ops {
            let a = PhysAddr::new(addr);
            let class = if is_meta {
                AccessClass::Metadata
            } else {
                AccessClass::Data
            };
            let hit = cache.access(a, RwKind::Read, class);
            prop_assert_eq!(hit, cache.probe(a), "access/probe disagree");
            if !hit {
                cache.fill(a, class, false);
                prop_assert!(cache.probe(a), "fill must install");
            }
        }
    }

    /// MSHR-file invariants under random probe/advance sequences: the
    /// file never over-commits its registers, coalescing only merges
    /// onto *live* fills, a Full verdict names a time that makes
    /// progress, and registers recycle once their fill lands.
    #[test]
    fn mshr_file_invariants(ops in vec((0u64..24, 0u64..60), 1..300)) {
        use ndp_cache::mshr::{MshrFile, MshrLookup};
        use ndp_types::LineAddr;

        const CAP: usize = 4;
        const FILL: u64 = 100;
        let mut m = MshrFile::new(CAP);
        let mut now = Cycles::ZERO;
        for &(line_sel, advance) in &ops {
            now += Cycles::new(advance);
            let line = LineAddr::of(PhysAddr::new(line_sel * 64));
            prop_assert!(m.in_flight(now) <= CAP, "over-committed file");
            match m.probe(line, now) {
                MshrLookup::Coalesced(done) => {
                    // Merges only onto fills still in flight.
                    prop_assert!(done > now);
                }
                MshrLookup::Free => {
                    m.allocate(line, now, now + Cycles::new(FILL));
                    prop_assert!(m.in_flight(now) <= CAP);
                }
                MshrLookup::Full(free_at) => {
                    prop_assert!(free_at > now, "Full must name a future time");
                    prop_assert_eq!(m.in_flight(now), CAP);
                    // Waiting out the named time always makes progress.
                    match m.probe(line, free_at) {
                        MshrLookup::Full(_) => prop_assert!(false, "no progress at free_at"),
                        MshrLookup::Coalesced(done) => prop_assert!(done > free_at),
                        MshrLookup::Free => {
                            m.allocate(line, free_at, free_at + Cycles::new(FILL));
                        }
                    }
                    now = free_at;
                }
            }
        }
    }

    /// Inclusive invariant: after every step of the demand-fill /
    /// back-invalidate protocol (the machine's flow, replayed here), no
    /// line is resident in the private L1 while absent from the shared
    /// L3.
    #[test]
    fn inclusive_l3_always_covers_the_l1(ops in vec((0u64..96, prop::bool::ANY), 1..300)) {
        let mut l1 = prop_l1();
        let mut l3 = prop_l3(InclusionPolicy::Inclusive);
        let mut now = Cycles::ZERO;
        for &(sel, is_store) in &ops {
            now += Cycles::new(7);
            let addr = line_of(sel);
            let rw = if is_store { RwKind::Write } else { RwKind::Read };
            if !l1.lookup(addr, rw, AccessClass::Data).is_hit() {
                let look = l3.access(addr, RwKind::Read, AccessClass::Data, now);
                if !look.hit {
                    // Demand fill installs in the shared level too; its
                    // victim back-invalidates every private copy.
                    if let Some(victim) = l3.fill(addr, AccessClass::Data, Asid::ZERO, false) {
                        let bi = l1.back_invalidate(victim.addr);
                        if bi.present {
                            l3.note_back_invalidation();
                        }
                        if bi.dirty && l3.probe(victim.addr) {
                            prop_assert!(false, "back-invalidated line still shared-resident");
                        }
                    }
                }
                // Private fill: outer dirty victims update the L3 copy.
                let outer = l1.depth() - 1;
                for lv in l1.fill_collect(addr, AccessClass::Data, is_store) {
                    if lv.level == outer && lv.victim.dirty {
                        let _ = l3.accept_writeback(lv.victim.addr);
                    }
                }
            }
            // The invariant, checked over the whole pool every step.
            for sel in 0..48u64 {
                let a = line_of(sel);
                prop_assert!(
                    !l1.probe(a) || l3.probe(a),
                    "inclusion violated at {:#x}",
                    a.as_u64()
                );
            }
        }
    }

    /// Exclusive invariant: a line is never resident in the private L1
    /// and the shared L3 at once — demand fills bypass the L3, private
    /// victims feed it, hits extract.
    #[test]
    fn exclusive_l3_never_duplicates_the_l1(ops in vec((0u64..96, prop::bool::ANY), 1..300)) {
        let mut l1 = prop_l1();
        let mut l3 = prop_l3(InclusionPolicy::Exclusive);
        let mut now = Cycles::ZERO;
        for &(sel, is_store) in &ops {
            now += Cycles::new(7);
            let addr = line_of(sel);
            let rw = if is_store { RwKind::Write } else { RwKind::Read };
            if !l1.lookup(addr, rw, AccessClass::Data).is_hit() {
                let look = l3.access(addr, RwKind::Read, AccessClass::Data, now);
                // Hit or miss, the line ends up (only) in the private L1;
                // an exclusive hit extracted it from the L3.
                let outer = l1.depth() - 1;
                for lv in l1.fill_collect(addr, AccessClass::Data, is_store || look.dirty) {
                    if lv.level == outer {
                        // The departing line, clean or dirty, fills the
                        // exclusive L3 (its own victims just drop here —
                        // memory is not modelled in this harness).
                        let _ = l3.fill(lv.victim.addr, lv.victim.class, Asid::ZERO, lv.victim.dirty);
                    }
                }
            }
            for sel in 0..48u64 {
                let a = line_of(sel);
                prop_assert!(
                    !(l1.probe(a) && l3.probe(a)),
                    "exclusivity violated at {:#x}",
                    a.as_u64()
                );
            }
        }
    }

    /// Occupancy-by-ASID is a partition of the live lines: it sums to
    /// them after any fill/access/writeback stream, and live lines never
    /// exceed capacity.
    #[test]
    fn shared_occupancy_partitions_live_lines(
        ops in vec((0u64..96, 0u16..4, 0u8..3), 1..300)
    ) {
        let mut l3 = prop_l3(InclusionPolicy::Inclusive);
        let mut now = Cycles::ZERO;
        for &(sel, asid, kind) in &ops {
            now += Cycles::new(3);
            let addr = line_of(sel);
            match kind {
                0 => { let _ = l3.fill(addr, AccessClass::Data, Asid(asid), asid % 2 == 0); }
                1 => { let _ = l3.access(addr, RwKind::Read, AccessClass::Data, now); }
                _ => { let _ = l3.accept_writeback(addr); }
            }
            let occupancy = l3.occupancy_by_asid();
            let total: u64 = occupancy.iter().map(|(_, n)| n).sum();
            prop_assert_eq!(total, l3.live_lines(), "occupancy must sum to live lines");
            prop_assert!(l3.live_lines() <= 16, "capacity is 16 lines");
            // Sorted, duplicate-free ASIDs.
            for pair in occupancy.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0);
            }
        }
    }

    /// Bank mapping is a partition of the sets: every set maps to
    /// exactly one bank, banks split the sets evenly, and addresses
    /// sharing a set share a bank.
    #[test]
    fn shared_bank_mapping_partitions_sets(
        sets_pow in 3u32..7, banks_pow in 0u32..4, addrs in vec(0u64..1_000_000, 1..50)
    ) {
        let sets = 1u64 << sets_pow;
        let banks = (1u32 << banks_pow).min(sets as u32);
        let cache = SharedCache::new(SharedConfig {
            name: "prop-banks",
            size_bytes: sets * 2 * 64, // 2 ways
            ways: 2,
            banks,
            line_bytes: 64,
            latency: Cycles::new(5),
            bank_period: Cycles::new(1),
            policy: InclusionPolicy::Inclusive,
            mshrs_per_bank: 1,
        });
        let mut per_bank = vec![0u64; banks as usize];
        for set in 0..cache.sets() {
            let bank = cache.bank_of_set(set);
            prop_assert!(bank < banks as usize, "bank out of range");
            per_bank[bank] += 1;
        }
        for &count in &per_bank {
            prop_assert_eq!(count, sets / u64::from(banks), "uneven bank split");
        }
        for &addr in &addrs {
            let a = PhysAddr::new(addr & !63);
            // A line and its set-alias (one full stride away) land on
            // the same bank; the bank is stable across repeated queries.
            let alias = PhysAddr::new(a.as_u64() + sets * 64);
            prop_assert_eq!(cache.bank_of(a), cache.bank_of(alias));
            prop_assert_eq!(cache.bank_of(a), cache.bank_of(a));
        }
    }

    /// Writebacks only ever emerge for lines that were written.
    #[test]
    fn writebacks_require_stores(ops in vec((0u64..4_096, prop::bool::ANY), 1..300)) {
        let mut cache = SetAssocCache::new(tiny_config());
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &(addr, is_store) in &ops {
            let a = PhysAddr::new(addr & !63);
            let rw = if is_store { RwKind::Write } else { RwKind::Read };
            if is_store {
                written.insert(a.as_u64());
            }
            if !cache.access(a, rw, AccessClass::Data) {
                if let Some(wb) = cache.fill(a, AccessClass::Data, is_store) {
                    prop_assert!(
                        written.contains(&wb.addr.as_u64()),
                        "writeback of never-written line {:#x}",
                        wb.addr.as_u64()
                    );
                }
            }
        }
    }
}
