//! Property tests checking the set-associative cache against a reference
//! model (a per-set LRU list) under random access/fill sequences.

use ndp_cache::replacement::ReplacementPolicy;
use ndp_cache::set_assoc::{CacheConfig, SetAssocCache};
use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per-set MRU-ordered deque of line addresses.
struct RefCache {
    sets: usize,
    ways: usize,
    lines: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets,
            ways,
            lines: vec![VecDeque::new(); sets],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / 64) as usize) & (self.sets - 1)
    }

    fn access(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let line = addr / 64;
        let dq = &mut self.lines[set];
        if let Some(pos) = dq.iter().position(|&l| l == line) {
            dq.remove(pos);
            dq.push_front(line);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let line = addr / 64;
        let dq = &mut self.lines[set];
        if let Some(pos) = dq.iter().position(|&l| l == line) {
            dq.remove(pos);
        } else if dq.len() == self.ways {
            dq.pop_back();
        }
        dq.push_front(line);
    }
}

fn tiny_config() -> CacheConfig {
    CacheConfig {
        name: "prop",
        size_bytes: 4096, // 8 sets x 8 ways
        ways: 8,
        line_bytes: 64,
        latency: Cycles::new(1),
        replacement: ReplacementPolicy::Lru,
        metadata_lru_insert: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under pure-LRU data traffic, the cache must agree with the
    /// reference model on every hit/miss decision.
    #[test]
    fn matches_reference_lru(addrs in vec(0u64..32_768, 1..400)) {
        let mut cache = SetAssocCache::new(tiny_config());
        let mut reference = RefCache::new(8, 8);
        for &addr in &addrs {
            let a = PhysAddr::new(addr & !63);
            let got = cache.access(a, RwKind::Read, AccessClass::Data);
            let want = reference.access(addr & !63);
            prop_assert_eq!(got, want, "divergence at {:#x}", addr);
            if !got {
                cache.fill(a, AccessClass::Data, false);
            }
            if !want {
                reference.fill(addr & !63);
            }
        }
    }

    /// Statistics identities: hits + misses == accesses; probe never
    /// changes them; resident set size never exceeds capacity.
    #[test]
    fn stats_identities(addrs in vec(0u64..16_384, 1..300)) {
        let mut cache = SetAssocCache::new(tiny_config());
        for &addr in &addrs {
            let a = PhysAddr::new(addr);
            let before = cache.stats().total().total();
            let _ = cache.probe(a);
            prop_assert_eq!(cache.stats().total().total(), before, "probe counted");
            if !cache.access(a, RwKind::Read, AccessClass::Data) {
                cache.fill(a, AccessClass::Data, false);
            }
        }
        prop_assert_eq!(cache.stats().total().total(), addrs.len() as u64);
        // Everything just filled must be resident or evicted — re-probing
        // all addresses can't yield more residents than capacity.
        let resident = addrs
            .iter()
            .map(|&a| a & !63)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|&a| cache.probe(PhysAddr::new(a)))
            .count();
        prop_assert!(resident <= 64, "capacity is 64 lines, found {resident}");
    }

    /// Metadata-LIP mode never changes *correctness* (hit iff resident),
    /// only survival time: a just-filled line is always resident.
    #[test]
    fn lip_mode_is_still_a_cache(ops in vec((0u64..8_192, prop::bool::ANY), 1..300)) {
        let mut cfg = tiny_config();
        cfg.metadata_lru_insert = true;
        let mut cache = SetAssocCache::new(cfg);
        for &(addr, is_meta) in &ops {
            let a = PhysAddr::new(addr);
            let class = if is_meta {
                AccessClass::Metadata
            } else {
                AccessClass::Data
            };
            let hit = cache.access(a, RwKind::Read, class);
            prop_assert_eq!(hit, cache.probe(a), "access/probe disagree");
            if !hit {
                cache.fill(a, class, false);
                prop_assert!(cache.probe(a), "fill must install");
            }
        }
    }

    /// MSHR-file invariants under random probe/advance sequences: the
    /// file never over-commits its registers, coalescing only merges
    /// onto *live* fills, a Full verdict names a time that makes
    /// progress, and registers recycle once their fill lands.
    #[test]
    fn mshr_file_invariants(ops in vec((0u64..24, 0u64..60), 1..300)) {
        use ndp_cache::mshr::{MshrFile, MshrLookup};
        use ndp_types::LineAddr;

        const CAP: usize = 4;
        const FILL: u64 = 100;
        let mut m = MshrFile::new(CAP);
        let mut now = Cycles::ZERO;
        for &(line_sel, advance) in &ops {
            now += Cycles::new(advance);
            let line = LineAddr::of(PhysAddr::new(line_sel * 64));
            prop_assert!(m.in_flight(now) <= CAP, "over-committed file");
            match m.probe(line, now) {
                MshrLookup::Coalesced(done) => {
                    // Merges only onto fills still in flight.
                    prop_assert!(done > now);
                }
                MshrLookup::Free => {
                    m.allocate(line, now, now + Cycles::new(FILL));
                    prop_assert!(m.in_flight(now) <= CAP);
                }
                MshrLookup::Full(free_at) => {
                    prop_assert!(free_at > now, "Full must name a future time");
                    prop_assert_eq!(m.in_flight(now), CAP);
                    // Waiting out the named time always makes progress.
                    match m.probe(line, free_at) {
                        MshrLookup::Full(_) => prop_assert!(false, "no progress at free_at"),
                        MshrLookup::Coalesced(done) => prop_assert!(done > free_at),
                        MshrLookup::Free => {
                            m.allocate(line, free_at, free_at + Cycles::new(FILL));
                        }
                    }
                    now = free_at;
                }
            }
        }
    }

    /// Writebacks only ever emerge for lines that were written.
    #[test]
    fn writebacks_require_stores(ops in vec((0u64..4_096, prop::bool::ANY), 1..300)) {
        let mut cache = SetAssocCache::new(tiny_config());
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &(addr, is_store) in &ops {
            let a = PhysAddr::new(addr & !63);
            let rw = if is_store { RwKind::Write } else { RwKind::Read };
            if is_store {
                written.insert(a.as_u64());
            }
            if !cache.access(a, rw, AccessClass::Data) {
                if let Some(wb) = cache.fill(a, AccessClass::Data, is_store) {
                    prop_assert!(
                        written.contains(&wb.addr.as_u64()),
                        "writeback of never-written line {:#x}",
                        wb.addr.as_u64()
                    );
                }
            }
        }
    }
}
