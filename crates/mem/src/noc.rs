//! Mesh interconnect model (Table I: mesh, 4-cycle hop latency, 512-bit
//! links).
//!
//! NDP cores sit in the logic layer directly under the DRAM stack, so their
//! path to a memory channel is short (one vertical hop plus a little mesh
//! distance). CPU cores must additionally cross the off-chip interface,
//! which adds a fixed serialisation + SerDes latency both ways. This is the
//! structural reason a *cache-missing* NDP access is cheap while a
//! cache-missing CPU access is not — and why NDP systems feel page-table
//! walks so acutely once their single cache level fails them.

use ndp_types::{CoreId, Cycles};

/// A 2-D mesh connecting cores to memory-channel endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshNoc {
    /// Mesh side length (tiles per row); cores fill row-major.
    pub width: u32,
    /// Per-hop router+link latency (Table I: 4 cycles).
    pub hop_latency: Cycles,
    /// Extra one-way latency for leaving the package (0 for NDP logic
    /// layer; >0 for an off-chip CPU memory path).
    pub off_chip_penalty: Cycles,
}

impl MeshNoc {
    /// Mesh sized for `cores` tiles with the Table I hop latency and no
    /// off-chip penalty (the NDP configuration).
    #[must_use]
    pub fn ndp(cores: u32) -> Self {
        MeshNoc {
            width: mesh_width(cores),
            hop_latency: Cycles::new(4),
            off_chip_penalty: Cycles::ZERO,
        }
    }

    /// Mesh sized for `cores` tiles with an off-chip DDR path (the CPU
    /// configuration). The 60-cycle penalty models the on-chip network to
    /// the PHY plus off-package signalling at 2.6 GHz.
    #[must_use]
    pub fn cpu(cores: u32) -> Self {
        MeshNoc {
            width: mesh_width(cores),
            hop_latency: Cycles::new(4),
            off_chip_penalty: Cycles::new(60),
        }
    }

    /// Position of a core tile in the mesh (row-major placement).
    #[must_use]
    pub fn core_position(&self, core: CoreId) -> (u32, u32) {
        let idx = core.0 % (self.width * self.width).max(1);
        (idx % self.width, idx / self.width)
    }

    /// Position of a memory-channel endpoint. Channels sit along the top
    /// edge of the mesh, spread across columns.
    #[must_use]
    pub fn channel_position(&self, channel: u32) -> (u32, u32) {
        (channel % self.width, 0)
    }

    /// One-way latency from a core to a memory channel: Manhattan hops plus
    /// one ejection hop, plus any off-chip penalty.
    #[must_use]
    pub fn core_to_channel(&self, core: CoreId, channel: u32) -> Cycles {
        let (cx, cy) = self.core_position(core);
        let (mx, my) = self.channel_position(channel);
        let hops = cx.abs_diff(mx) + cy.abs_diff(my) + 1;
        Cycles::new(u64::from(hops) * self.hop_latency.as_u64()) + self.off_chip_penalty
    }

    /// Round-trip network latency for a memory access.
    #[must_use]
    pub fn round_trip(&self, core: CoreId, channel: u32) -> Cycles {
        let one_way = self.core_to_channel(core, channel);
        one_way + one_way
    }
}

/// Smallest square mesh that fits `cores` tiles.
#[must_use]
fn mesh_width(cores: u32) -> u32 {
    let mut w = 1u32;
    while w * w < cores.max(1) {
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_fits_cores() {
        assert_eq!(mesh_width(1), 1);
        assert_eq!(mesh_width(4), 2);
        assert_eq!(mesh_width(5), 3);
        assert_eq!(mesh_width(8), 3);
        assert_eq!(mesh_width(0), 1);
    }

    #[test]
    fn ndp_single_core_one_hop() {
        let noc = MeshNoc::ndp(1);
        assert_eq!(noc.core_to_channel(CoreId(0), 0), Cycles::new(4));
        assert_eq!(noc.round_trip(CoreId(0), 0), Cycles::new(8));
    }

    #[test]
    fn cpu_pays_off_chip_both_ways() {
        let ndp = MeshNoc::ndp(4);
        let cpu = MeshNoc::cpu(4);
        let n = ndp.round_trip(CoreId(0), 0);
        let c = cpu.round_trip(CoreId(0), 0);
        assert_eq!(c - n, Cycles::new(120));
    }

    #[test]
    fn distance_grows_with_separation() {
        let noc = MeshNoc::ndp(8); // 3x3 mesh
        let near = noc.core_to_channel(CoreId(0), 0); // (0,0) -> (0,0)
        let far = noc.core_to_channel(CoreId(8), 0); // (2,2) -> (0,0)
        assert!(far > near);
    }

    #[test]
    fn channels_spread_over_columns() {
        let noc = MeshNoc::ndp(4);
        assert_ne!(noc.channel_position(0), noc.channel_position(1));
        // Channel index wraps around the mesh width.
        assert_eq!(noc.channel_position(0), noc.channel_position(2));
    }

    #[test]
    fn core_ids_wrap_into_mesh() {
        let noc = MeshNoc::ndp(4);
        assert_eq!(noc.core_position(CoreId(0)), noc.core_position(CoreId(4)));
    }
}
