//! Memory controller: the shared front door to DRAM.
//!
//! Tracks per-class traffic (normal data vs. PTE metadata) so that the
//! paper's "main-memory accesses caused by PTEs" statistic (§IV-A, a 200×
//! inflation in NDP vs CPU) can be measured directly.

use crate::dram::{Dram, DramConfig, DramStats};
use ndp_types::stats::LatencyStat;
use ndp_types::{AccessClass, Cycles, MemTicket, PhysAddr, RwKind};

/// Per-class request counters.
///
/// `data` and `metadata` count **demand reads** (a core or walker waits on
/// them); `write` counts posted writes — cache writebacks issued
/// fire-and-forget — regardless of the line's class. Keeping them apart
/// stops bandwidth-only write traffic from inflating demand statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassTraffic {
    /// Demand-read requests for normal program data.
    pub data: u64,
    /// Demand-read requests for page-table metadata.
    pub metadata: u64,
    /// Posted writes (writebacks); nobody waits on these.
    pub write: u64,
}

impl ClassTraffic {
    /// Total requests, demand and posted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data + self.metadata + self.write
    }

    /// Demand-read requests (data + metadata).
    #[must_use]
    pub fn demand(&self) -> u64 {
        self.data + self.metadata
    }

    /// Fraction of *demand* requests that were metadata, in `[0, 1]` (the
    /// paper's "main-memory accesses caused by PTEs" share).
    #[must_use]
    pub fn metadata_fraction(&self) -> f64 {
        if self.demand() == 0 {
            0.0
        } else {
            self.metadata as f64 / self.demand() as f64
        }
    }
}

/// Controller-level statistics (device stats live in [`DramStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Traffic split by demand class and write.
    pub traffic: ClassTraffic,
    /// Latency of demand metadata reads.
    pub metadata_latency: LatencyStat,
    /// Latency of demand data reads.
    pub data_latency: LatencyStat,
    /// Latency of posted writes (informational; nobody waits on these).
    pub write_latency: LatencyStat,
}

/// The shared memory controller.
///
/// All cores funnel memory requests through one controller instance, which is
/// what couples them: a burst of PTE fetches from one core delays every other
/// core's requests to the same banks/channels.
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: Dram,
    /// Fixed controller pipeline overhead added to every request.
    overhead: Cycles,
    stats: ControllerStats,
}

impl MemoryController {
    /// Default controller pipeline overhead.
    pub const DEFAULT_OVERHEAD: Cycles = Cycles::new(10);

    /// Builds a controller over a freshly-constructed DRAM device.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        MemoryController {
            dram: Dram::new(config),
            overhead: Self::DEFAULT_OVERHEAD,
            stats: ControllerStats::default(),
        }
    }

    /// Overrides the fixed controller overhead.
    #[must_use]
    pub fn with_overhead(mut self, overhead: Cycles) -> Self {
        self.overhead = overhead;
        self
    }

    /// Switches the underlying device to overlap (reservation-list) bank
    /// scheduling — used when cores issue requests out of processing
    /// order (non-blocking pipelines). See [`crate::dram`]'s module docs.
    #[must_use]
    pub fn with_overlap_scheduling(mut self) -> Self {
        self.dram.set_overlap_scheduling(true);
        self
    }

    /// Issues one 64 B request arriving at `now`; returns its completion
    /// timestamp. Writes are timed like reads (they occupy the bank and
    /// channel identically, which is their whole contention effect) but
    /// are accounted separately: posted writebacks must not inflate the
    /// demand-read traffic or latency statistics a core actually waits on.
    pub fn request(
        &mut self,
        addr: PhysAddr,
        rw: RwKind,
        class: AccessClass,
        now: Cycles,
    ) -> Cycles {
        self.request_ticketed(addr, rw, class, now, now).done
    }

    /// Issues one 64 B request with full completion-time plumbing: the
    /// request left its core at `issue` and reaches this controller at
    /// `arrival` (after the NoC traversal). Returns the [`MemTicket`]
    /// recording when the data is available *at the controller* — the
    /// caller adds its return-path latency on top. Overlapped requests
    /// from a non-blocking core each carry their own arrival time, so they
    /// contend realistically in the DRAM banks instead of being serialised
    /// by the issuing core's clock.
    pub fn request_ticketed(
        &mut self,
        addr: PhysAddr,
        rw: RwKind,
        class: AccessClass,
        issue: Cycles,
        arrival: Cycles,
    ) -> MemTicket {
        let result = self.dram.access(addr, rw, arrival);
        let done = result.done + self.overhead;
        let latency = done - arrival;
        if rw.is_write() {
            self.stats.traffic.write += 1;
            self.stats.write_latency.record(latency);
        } else {
            match class {
                AccessClass::Data => {
                    self.stats.traffic.data += 1;
                    self.stats.data_latency.record(latency);
                }
                AccessClass::Metadata => {
                    self.stats.traffic.metadata += 1;
                    self.stats.metadata_latency.record(latency);
                }
            }
        }
        MemTicket {
            issue,
            arrival,
            done,
        }
    }

    /// Device-level statistics.
    #[must_use]
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Controller-level statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        self.dram.config()
    }

    /// Resets device state and statistics.
    pub fn reset(&mut self) {
        self.dram.reset();
        self.stats = ControllerStats::default();
    }

    /// Clears statistics only, preserving device timing state.
    pub fn clear_stats(&mut self) {
        self.dram.clear_stats();
        self.stats = ControllerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_adds_overhead() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        let done = mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert_eq!(
            done,
            DramConfig::hbm2().timing.row_miss + MemoryController::DEFAULT_OVERHEAD
        );
    }

    #[test]
    fn class_traffic_split() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        for i in 0..4 {
            mc.request(
                PhysAddr::new(i * 64),
                RwKind::Read,
                AccessClass::Metadata,
                Cycles::ZERO,
            );
        }
        mc.request(
            PhysAddr::new(1 << 20),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert_eq!(mc.stats().traffic.metadata, 4);
        assert_eq!(mc.stats().traffic.data, 1);
        assert!((mc.stats().traffic.metadata_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(mc.stats().metadata_latency.count, 4);
    }

    /// Regression for the write-accounting bug: posted writes must land in
    /// their own traffic/latency counters and leave every demand-read
    /// statistic — controller and DRAM queue-delay alike — untouched.
    #[test]
    fn writes_do_not_pollute_demand_stats() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        let demand_latency = mc.stats().data_latency;
        let demand_queue = mc.dram_stats().queue_delay;
        // A burst of posted writebacks to the same bank (worst case for
        // queue-delay pollution: they all stack up behind each other).
        for _ in 0..8 {
            mc.request(
                PhysAddr::new(0),
                RwKind::Write,
                AccessClass::Data,
                Cycles::ZERO,
            );
        }
        assert_eq!(mc.stats().traffic.data, 1);
        assert_eq!(mc.stats().traffic.write, 8);
        assert_eq!(mc.stats().traffic.total(), 9);
        assert_eq!(mc.stats().traffic.demand(), 1);
        assert_eq!(mc.stats().write_latency.count, 8);
        assert_eq!(
            mc.stats().data_latency,
            demand_latency,
            "demand latency unmoved by writes"
        );
        assert_eq!(
            mc.dram_stats().queue_delay,
            demand_queue,
            "DRAM demand queue-delay unmoved by writes"
        );
        assert_eq!(mc.dram_stats().write_queue_delay.count, 8);
        assert!(
            mc.dram_stats().write_queue_delay.max > Cycles::ZERO,
            "stacked writes do queue — just in their own bucket"
        );
        // And the bank contention is real: a demand read behind the write
        // burst still waits.
        let done = mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert!(
            done > DramConfig::hbm2().timing.row_conflict + MemoryController::DEFAULT_OVERHEAD,
            "writes keep occupying banks"
        );
    }

    #[test]
    fn contention_raises_latency() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        // Hammer one bank from time zero: later requests must queue.
        let first = mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        let mut last = first;
        for _ in 0..8 {
            last = mc.request(
                PhysAddr::new(0),
                RwKind::Read,
                AccessClass::Data,
                Cycles::ZERO,
            );
        }
        assert!(last.as_u64() > first.as_u64() * 4, "queueing accumulates");
    }

    #[test]
    fn reset_clears_everything() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        mc.reset();
        assert_eq!(mc.stats().traffic.total(), 0);
        assert_eq!(mc.dram_stats().requests, 0);
    }

    #[test]
    fn empty_traffic_fraction_is_zero() {
        assert_eq!(ClassTraffic::default().metadata_fraction(), 0.0);
    }
}
