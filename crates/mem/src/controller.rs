//! Memory controller: the shared front door to DRAM.
//!
//! Tracks per-class traffic (normal data vs. PTE metadata) so that the
//! paper's "main-memory accesses caused by PTEs" statistic (§IV-A, a 200×
//! inflation in NDP vs CPU) can be measured directly.

use crate::dram::{Dram, DramConfig, DramStats};
use ndp_types::stats::LatencyStat;
use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};

/// Per-class request counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassTraffic {
    /// Requests for normal program data.
    pub data: u64,
    /// Requests for page-table metadata.
    pub metadata: u64,
}

impl ClassTraffic {
    /// Total requests.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data + self.metadata
    }

    /// Fraction of requests that were metadata, in `[0, 1]`.
    #[must_use]
    pub fn metadata_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.metadata as f64 / self.total() as f64
        }
    }
}

/// Controller-level statistics (device stats live in [`DramStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Read/write traffic split by access class.
    pub traffic: ClassTraffic,
    /// Latency of metadata requests.
    pub metadata_latency: LatencyStat,
    /// Latency of data requests.
    pub data_latency: LatencyStat,
}

/// The shared memory controller.
///
/// All cores funnel memory requests through one controller instance, which is
/// what couples them: a burst of PTE fetches from one core delays every other
/// core's requests to the same banks/channels.
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: Dram,
    /// Fixed controller pipeline overhead added to every request.
    overhead: Cycles,
    stats: ControllerStats,
}

impl MemoryController {
    /// Default controller pipeline overhead.
    pub const DEFAULT_OVERHEAD: Cycles = Cycles::new(10);

    /// Builds a controller over a freshly-constructed DRAM device.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        MemoryController {
            dram: Dram::new(config),
            overhead: Self::DEFAULT_OVERHEAD,
            stats: ControllerStats::default(),
        }
    }

    /// Overrides the fixed controller overhead.
    #[must_use]
    pub fn with_overhead(mut self, overhead: Cycles) -> Self {
        self.overhead = overhead;
        self
    }

    /// Issues one 64 B request arriving at `now`; returns its completion
    /// timestamp. Writes are modelled with read timing (posted writes would
    /// only shorten them; the paper's traffic is read-dominated).
    pub fn request(
        &mut self,
        addr: PhysAddr,
        _rw: RwKind,
        class: AccessClass,
        now: Cycles,
    ) -> Cycles {
        let result = self.dram.access(addr, now);
        let done = result.done + self.overhead;
        let latency = done - now;
        match class {
            AccessClass::Data => {
                self.stats.traffic.data += 1;
                self.stats.data_latency.record(latency);
            }
            AccessClass::Metadata => {
                self.stats.traffic.metadata += 1;
                self.stats.metadata_latency.record(latency);
            }
        }
        done
    }

    /// Device-level statistics.
    #[must_use]
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Controller-level statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        self.dram.config()
    }

    /// Resets device state and statistics.
    pub fn reset(&mut self) {
        self.dram.reset();
        self.stats = ControllerStats::default();
    }

    /// Clears statistics only, preserving device timing state.
    pub fn clear_stats(&mut self) {
        self.dram.clear_stats();
        self.stats = ControllerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_adds_overhead() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        let done = mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert_eq!(
            done,
            DramConfig::hbm2().timing.row_miss + MemoryController::DEFAULT_OVERHEAD
        );
    }

    #[test]
    fn class_traffic_split() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        for i in 0..4 {
            mc.request(
                PhysAddr::new(i * 64),
                RwKind::Read,
                AccessClass::Metadata,
                Cycles::ZERO,
            );
        }
        mc.request(
            PhysAddr::new(1 << 20),
            RwKind::Write,
            AccessClass::Data,
            Cycles::ZERO,
        );
        assert_eq!(mc.stats().traffic.metadata, 4);
        assert_eq!(mc.stats().traffic.data, 1);
        assert!((mc.stats().traffic.metadata_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(mc.stats().metadata_latency.count, 4);
    }

    #[test]
    fn contention_raises_latency() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        // Hammer one bank from time zero: later requests must queue.
        let first = mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        let mut last = first;
        for _ in 0..8 {
            last = mc.request(
                PhysAddr::new(0),
                RwKind::Read,
                AccessClass::Data,
                Cycles::ZERO,
            );
        }
        assert!(last.as_u64() > first.as_u64() * 4, "queueing accumulates");
    }

    #[test]
    fn reset_clears_everything() {
        let mut mc = MemoryController::new(DramConfig::hbm2());
        mc.request(
            PhysAddr::new(0),
            RwKind::Read,
            AccessClass::Data,
            Cycles::ZERO,
        );
        mc.reset();
        assert_eq!(mc.stats().traffic.total(), 0);
        assert_eq!(mc.dram_stats().requests, 0);
    }

    #[test]
    fn empty_traffic_fraction_is_zero() {
        assert_eq!(ClassTraffic::default().metadata_fraction(), 0.0);
    }
}
