//! The physical-address → memory-channel map.
//!
//! Channels interleave at cache-line granularity (fine interleaving,
//! standard for HBM): consecutive 64 B lines round-robin across channels.
//! Both the simulator's NoC routing (which channel endpoint a request
//! travels to) and the DRAM decoder (which channel services it) must agree
//! on this map — it used to be duplicated as a bare `(addr >> 6) %
//! channels` in each place; this module is now the single source of truth.

use ndp_types::{LineAddr, PhysAddr};

/// The memory channel servicing `addr` under line-interleaved mapping
/// across `channels` channels.
///
/// # Panics
///
/// Panics if `channels` is zero (a configuration with no channels cannot
/// route requests anywhere).
#[must_use]
#[inline]
pub fn line_channel(addr: PhysAddr, channels: u32) -> u32 {
    assert!(channels > 0, "channel map needs at least one channel");
    (LineAddr::of(addr).as_u64() % u64::from(channels)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_round_robin() {
        for ch in 0..8u32 {
            assert_eq!(line_channel(PhysAddr::new(u64::from(ch) * 64), 8), ch);
        }
        // Wraps after a full round.
        assert_eq!(line_channel(PhysAddr::new(8 * 64), 8), 0);
    }

    #[test]
    fn same_line_same_channel() {
        let base = PhysAddr::new(0x4000);
        let last_byte = PhysAddr::new(0x403f);
        let next_line = PhysAddr::new(0x4040);
        assert_eq!(line_channel(base, 4), line_channel(last_byte, 4));
        assert_ne!(line_channel(base, 4), line_channel(next_line, 4));
    }

    #[test]
    fn single_channel_takes_everything() {
        assert_eq!(line_channel(PhysAddr::new(0xdead_beef), 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = line_channel(PhysAddr::new(0), 0);
    }
}
