#![forbid(unsafe_code)]
//! Main-memory substrate for the NDPage reproduction: DRAM device timing,
//! a contention-modelling memory controller, and the mesh interconnect.
//!
//! The paper's key motivation results (Figs 4–6) hinge on memory-system
//! behaviour: NDP cores reach 3D-stacked HBM2 through one logic-layer hop
//! but have no L2/L3 to absorb page-table traffic, so page-table walks both
//! suffer and cause DRAM contention as core counts grow. This crate provides
//! the pieces that reproduce that behaviour:
//!
//! * [`channel`] — the line-interleaved physical-address → channel map
//!   shared by the NoC routing in the simulator and the DRAM decoder.
//! * [`dram`] — banked row-buffer DRAM timing (DDR4-2400 and HBM2 presets
//!   matching Table I).
//! * [`controller`] — a memory controller that serialises requests per bank
//!   and per channel (FR-FCFS-like next-free-time model), accumulating
//!   queueing delay under load.
//! * [`noc`] — the mesh interconnect of Table I (4-cycle hop latency,
//!   512-bit links).
//!
//! # Examples
//!
//! ```
//! use ndp_mem::controller::MemoryController;
//! use ndp_mem::dram::DramConfig;
//! use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};
//!
//! let mut mc = MemoryController::new(DramConfig::hbm2());
//! let done = mc.request(
//!     PhysAddr::new(0x4000),
//!     RwKind::Read,
//!     AccessClass::Data,
//!     Cycles::ZERO,
//! );
//! assert!(done > Cycles::ZERO);
//! ```

pub mod channel;
pub mod controller;
pub mod dram;
pub mod noc;

pub use channel::line_channel;
pub use controller::MemoryController;
pub use dram::{Dram, DramConfig, DramTiming};
pub use noc::MeshNoc;
