//! Banked row-buffer DRAM timing model.
//!
//! Each bank keeps its open row and a `busy_until` timestamp; each channel
//! keeps a data-bus `busy_until`. A request's start time is the latest of
//! its arrival, its bank's free time and its channel's free time — a
//! conservative FR-FCFS-style approximation that produces realistic
//! queueing growth under multi-core load without simulating per-command
//! DRAM state machines.

use ndp_types::stats::LatencyStat;
use ndp_types::{Cycles, PhysAddr, RwKind};

/// Row-buffer outcome of a single DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The requested row was already open (CAS only).
    Hit,
    /// The bank was idle/closed (ACT + CAS).
    Miss,
    /// Another row was open (PRE + ACT + CAS).
    Conflict,
}

/// Core-clock-domain service times for the three row-buffer outcomes plus
/// the per-request data-burst occupancy of bank and channel.
///
/// All values are in 2.6 GHz core cycles (Table I), i.e. 1 ns ≈ 2.6 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Latency when the row buffer hits.
    pub row_hit: Cycles,
    /// Latency when the bank is closed.
    pub row_miss: Cycles,
    /// Latency when a different row is open.
    pub row_conflict: Cycles,
    /// Bank/bus occupancy per 64 B transfer (limits throughput).
    pub burst: Cycles,
}

impl DramTiming {
    /// DDR4-2400 timing (tCL ≈ tRCD ≈ tRP ≈ 13.75 ns) in 2.6 GHz cycles.
    #[must_use]
    pub const fn ddr4_2400() -> Self {
        DramTiming {
            row_hit: Cycles::new(36),
            row_miss: Cycles::new(72),
            row_conflict: Cycles::new(107),
            // 64 B over a 19.2 GB/s channel ≈ 3.3 ns ≈ 9 cycles.
            burst: Cycles::new(9),
        }
    }

    /// HBM2 timing: comparable array latency to DDR4 but much shorter
    /// per-channel occupancy thanks to wide, fast stacked channels.
    #[must_use]
    pub const fn hbm2() -> Self {
        DramTiming {
            row_hit: Cycles::new(34),
            row_miss: Cycles::new(68),
            row_conflict: Cycles::new(100),
            // 64 B over a ~32 GB/s pseudo-channel ≈ 2 ns ≈ 5 cycles.
            burst: Cycles::new(5),
        }
    }

    /// Service latency for an outcome.
    #[must_use]
    pub fn service(&self, outcome: RowOutcome) -> Cycles {
        match outcome {
            RowOutcome::Hit => self.row_hit,
            RowOutcome::Miss => self.row_miss,
            RowOutcome::Conflict => self.row_conflict,
        }
    }
}

/// Geometry + timing of a DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Device timing.
    pub timing: DramTiming,
    /// Total capacity in bytes (16 GB in Table I). Informational; the model
    /// does not allocate backing storage.
    pub capacity_bytes: u64,
}

impl DramConfig {
    /// DDR4-2400, 16 GB, 2 channels × 16 banks (Table I CPU memory).
    #[must_use]
    pub const fn ddr4_2400() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 8192,
            timing: DramTiming::ddr4_2400(),
            capacity_bytes: 16 << 30,
        }
    }

    /// HBM2, 16 GB, 8 channels × 16 banks (Table I NDP memory).
    #[must_use]
    pub const fn hbm2() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2048,
            timing: DramTiming::hbm2(),
            capacity_bytes: 16 << 30,
        }
    }

    /// The NDP cores' *local vault view* of the HBM2 stack: logic-layer
    /// cores are physically attached to one vault, so the bank-level
    /// parallelism available to them is a small slice of the full stack.
    /// This is what makes NDP memory latency contention-sensitive as core
    /// counts grow (Fig 6) even though aggregate stack bandwidth is high.
    #[must_use]
    pub const fn hbm2_vault() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 6,
            row_bytes: 2048,
            timing: DramTiming::hbm2(),
            capacity_bytes: 16 << 30,
        }
    }

    /// Total bank count across all channels.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        (self.channels * self.banks_per_channel) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycles,
}

/// Statistics accumulated by the DRAM device.
///
/// `requests` and the row-buffer counters cover *all* traffic (reads and
/// posted writes contend for the same banks), while the `queue_delay` and
/// `latency` distributions cover **demand reads only**: nobody waits on a
/// posted write, so folding its (large, deliberately deferred) delay into
/// the demand statistics would overstate what cores experience. Writes get
/// their own `write_queue_delay` distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Total requests served (reads + writes).
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (closed bank).
    pub row_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Queueing delay distribution of demand reads (start − arrival).
    pub queue_delay: LatencyStat,
    /// End-to-end device latency distribution of demand reads
    /// (done − arrival).
    pub latency: LatencyStat,
    /// Queueing delay distribution of (posted) writes.
    pub write_queue_delay: LatencyStat,
}

impl DramStats {
    /// Row-buffer hit rate over all requests.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResult {
    /// Timestamp at which the data is available.
    pub done: Cycles,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// Queueing delay suffered before service started.
    pub queue_delay: Cycles,
}

/// A banked, multi-channel DRAM device with open-row tracking.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    channel_busy_until: Vec<Cycles>,
    stats: DramStats,
}

impl Dram {
    /// Builds a device from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(config.banks_per_channel > 0, "DRAM needs at least one bank");
        Dram {
            config,
            banks: vec![Bank::default(); config.total_banks()],
            channel_busy_until: vec![Cycles::ZERO; config.channels as usize],
            stats: DramStats::default(),
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Maps a physical address to `(channel, bank-within-channel, row)`.
    ///
    /// Channels interleave at cache-line granularity (fine interleaving,
    /// standard for HBM); banks interleave at row granularity.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> (u32, u32, u64) {
        let line = addr.as_u64() >> 6; // 64 B lines
        let channel = (line % u64::from(self.config.channels)) as u32;
        let per_channel_addr = line / u64::from(self.config.channels) * 64;
        let row = per_channel_addr / self.config.row_bytes;
        let bank = (row % u64::from(self.config.banks_per_channel)) as u32;
        (
            channel,
            bank,
            row / u64::from(self.config.banks_per_channel),
        )
    }

    /// Performs one 64 B access arriving at `now`, returning its completion
    /// time and row outcome. Mutates bank open-row and busy state. Reads
    /// and writes are timed identically (the bank is occupied either way);
    /// `rw` only selects which latency distribution records the access —
    /// see [`DramStats`].
    pub fn access(&mut self, addr: PhysAddr, rw: RwKind, now: Cycles) -> DramResult {
        let (channel, bank_in_ch, row) = self.decode(addr);
        let bank_idx = (channel * self.config.banks_per_channel + bank_in_ch) as usize;
        let bank = &mut self.banks[bank_idx];

        let outcome = match bank.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        bank.open_row = Some(row);

        let ready = now
            .max(bank.busy_until)
            .max(self.channel_busy_until[channel as usize]);
        let queue_delay = ready - now;
        let service = self.config.timing.service(outcome);
        let done = ready + service;

        // The bank is tied up for the access plus its data burst; the
        // channel bus only for the burst.
        bank.busy_until = done + self.config.timing.burst;
        self.channel_busy_until[channel as usize] = ready + self.config.timing.burst;

        self.stats.requests += 1;
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        if rw.is_write() {
            self.stats.write_queue_delay.record(queue_delay);
        } else {
            self.stats.queue_delay.record(queue_delay);
            self.stats.latency.record(done - now);
        }

        DramResult {
            done,
            outcome,
            queue_delay,
        }
    }

    /// Clears statistics only, preserving open rows and busy state.
    pub fn clear_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Resets banks and statistics (not configuration).
    pub fn reset(&mut self) {
        self.banks.fill(Bank::default());
        self.channel_busy_until.fill(Cycles::ZERO);
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dram {
        Dram::new(DramConfig {
            channels: 2,
            banks_per_channel: 2,
            row_bytes: 1024,
            timing: DramTiming::hbm2(),
            capacity_bytes: 1 << 30,
        })
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = small();
        let r = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        assert_eq!(r.outcome, RowOutcome::Miss);
        assert_eq!(r.queue_delay, Cycles::ZERO);
        assert_eq!(r.done, DramTiming::hbm2().row_miss);
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut d = small();
        let t = DramTiming::hbm2();
        let first = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        // Address 128 is on the same channel (even line) and same row.
        let second = d.access(PhysAddr::new(128), RwKind::Read, first.done + t.burst);
        assert_eq!(second.outcome, RowOutcome::Hit);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = small();
        // Rows interleave over banks; row r and row r+banks share a bank.
        // Channel 0, per-channel rows: addresses 0 and (2 banks * 1024 B) * 2 ch apart.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(2 * 1024 * 2 * 2); // same channel, same bank, next row
        let (ch_a, bk_a, row_a) = d.decode(a);
        let (ch_b, bk_b, row_b) = d.decode(b);
        assert_eq!((ch_a, bk_a), (ch_b, bk_b));
        assert_ne!(row_a, row_b);
        let first = d.access(a, RwKind::Read, Cycles::ZERO);
        let r = d.access(b, RwKind::Read, first.done + Cycles::new(100));
        assert_eq!(r.outcome, RowOutcome::Conflict);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = small();
        let r1 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        // Immediately issue to the same bank: must wait for busy_until.
        let r2 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        assert!(r2.queue_delay > Cycles::ZERO);
        assert!(r2.done > r1.done);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = small();
        let r1 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO); // channel 0
        let r2 = d.access(PhysAddr::new(64), RwKind::Read, Cycles::ZERO); // channel 1
        assert_eq!(r1.queue_delay, Cycles::ZERO);
        assert_eq!(r2.queue_delay, Cycles::ZERO);
    }

    #[test]
    fn decode_spreads_lines_over_channels() {
        let d = small();
        let (c0, _, _) = d.decode(PhysAddr::new(0));
        let (c1, _, _) = d.decode(PhysAddr::new(64));
        assert_ne!(c0, c1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small();
        d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        d.access(PhysAddr::new(64), RwKind::Read, Cycles::ZERO);
        assert_eq!(d.stats().requests, 2);
        assert_eq!(d.stats().row_misses, 2);
        assert_eq!(d.stats().row_hit_rate(), 0.0);
        d.reset();
        assert_eq!(d.stats().requests, 0);
    }

    #[test]
    fn presets_are_sane() {
        let ddr = DramConfig::ddr4_2400();
        let hbm = DramConfig::hbm2();
        assert!(hbm.channels > ddr.channels, "HBM has more channels");
        assert!(
            hbm.timing.burst < ddr.timing.burst,
            "HBM has more bandwidth"
        );
        assert_eq!(ddr.capacity_bytes, 16 << 30);
        assert_eq!(hbm.capacity_bytes, 16 << 30);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let mut cfg = DramConfig::hbm2();
        cfg.channels = 0;
        let _ = Dram::new(cfg);
    }
}
