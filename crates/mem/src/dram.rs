//! Banked row-buffer DRAM timing model.
//!
//! Each bank keeps its open row and a `busy_until` timestamp; each channel
//! keeps a data-bus `busy_until`. A request's start time is the latest of
//! its arrival, its bank's free time and its channel's free time — a
//! conservative FR-FCFS-style approximation that produces realistic
//! queueing growth under multi-core load without simulating per-command
//! DRAM state machines.
//!
//! # Overlap mode
//!
//! The simulator processes one core *op* at a time, booking every memory
//! request of that op's chain (walk fetches, data fill) with its future
//! arrival timestamp. For blocking cores the chain is short and the
//! single `busy_until` per bank is a faithful queue. A windowed core,
//! however, books requests up to a whole issue-window of latency ahead —
//! under the plain model a request that merely got *processed* later
//! would queue behind one that *arrives* later, inflating contention with
//! a processing-order artifact. [`Dram::with_overlap_scheduling`] swaps
//! each bank's scalar busy time for a short **reservation list**:
//! a request takes the earliest gap that fits after its arrival
//! (FR-FCFS-with-lookahead), so overlapped requests contend by their
//! actual timestamps regardless of processing order. Blocking
//! configurations keep the legacy scalar path bit for bit.

use ndp_types::stats::LatencyStat;
use ndp_types::{Cycles, PhysAddr, RwKind};
use std::collections::VecDeque;

/// Reservations remembered per bank/channel in overlap mode. Banks are
/// shared by *all* cores, so the live-interval population scales with
/// `cores × mlp_window ÷ banks`; 256 covers every realistic
/// configuration (e.g. 8 cores × 64-deep windows against a 24-bank
/// vault) with slack. Beyond that the oldest interval falls off and its
/// span can be double-booked — a bounded optimism only reachable by
/// pathological single-bank hammering at maximum scale.
const MAX_BANK_RESERVATIONS: usize = 256;

/// Row-buffer outcome of a single DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The requested row was already open (CAS only).
    Hit,
    /// The bank was idle/closed (ACT + CAS).
    Miss,
    /// Another row was open (PRE + ACT + CAS).
    Conflict,
}

/// Core-clock-domain service times for the three row-buffer outcomes plus
/// the per-request data-burst occupancy of bank and channel.
///
/// All values are in 2.6 GHz core cycles (Table I), i.e. 1 ns ≈ 2.6 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Latency when the row buffer hits.
    pub row_hit: Cycles,
    /// Latency when the bank is closed.
    pub row_miss: Cycles,
    /// Latency when a different row is open.
    pub row_conflict: Cycles,
    /// Bank/bus occupancy per 64 B transfer (limits throughput).
    pub burst: Cycles,
}

impl DramTiming {
    /// DDR4-2400 timing (tCL ≈ tRCD ≈ tRP ≈ 13.75 ns) in 2.6 GHz cycles.
    #[must_use]
    pub const fn ddr4_2400() -> Self {
        DramTiming {
            row_hit: Cycles::new(36),
            row_miss: Cycles::new(72),
            row_conflict: Cycles::new(107),
            // 64 B over a 19.2 GB/s channel ≈ 3.3 ns ≈ 9 cycles.
            burst: Cycles::new(9),
        }
    }

    /// HBM2 timing: comparable array latency to DDR4 but much shorter
    /// per-channel occupancy thanks to wide, fast stacked channels.
    #[must_use]
    pub const fn hbm2() -> Self {
        DramTiming {
            row_hit: Cycles::new(34),
            row_miss: Cycles::new(68),
            row_conflict: Cycles::new(100),
            // 64 B over a ~32 GB/s pseudo-channel ≈ 2 ns ≈ 5 cycles.
            burst: Cycles::new(5),
        }
    }

    /// Service latency for an outcome.
    #[must_use]
    pub fn service(&self, outcome: RowOutcome) -> Cycles {
        match outcome {
            RowOutcome::Hit => self.row_hit,
            RowOutcome::Miss => self.row_miss,
            RowOutcome::Conflict => self.row_conflict,
        }
    }
}

/// Geometry + timing of a DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Device timing.
    pub timing: DramTiming,
    /// Total capacity in bytes (16 GB in Table I). Informational; the model
    /// does not allocate backing storage.
    pub capacity_bytes: u64,
}

impl DramConfig {
    /// DDR4-2400, 16 GB, 2 channels × 16 banks (Table I CPU memory).
    #[must_use]
    pub const fn ddr4_2400() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 8192,
            timing: DramTiming::ddr4_2400(),
            capacity_bytes: 16 << 30,
        }
    }

    /// HBM2, 16 GB, 8 channels × 16 banks (Table I NDP memory).
    #[must_use]
    pub const fn hbm2() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2048,
            timing: DramTiming::hbm2(),
            capacity_bytes: 16 << 30,
        }
    }

    /// The NDP cores' *local vault view* of the HBM2 stack: logic-layer
    /// cores are physically attached to one vault, so the bank-level
    /// parallelism available to them is a small slice of the full stack.
    /// This is what makes NDP memory latency contention-sensitive as core
    /// counts grow (Fig 6) even though aggregate stack bandwidth is high.
    #[must_use]
    pub const fn hbm2_vault() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 6,
            row_bytes: 2048,
            timing: DramTiming::hbm2(),
            capacity_bytes: 16 << 30,
        }
    }

    /// Total bank count across all channels.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        (self.channels * self.banks_per_channel) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycles,
}

/// A sorted, non-overlapping list of `(start, end)` occupancy intervals.
type Slots = VecDeque<(Cycles, Cycles)>;

/// Reservation state of overlap mode: every bank and every channel keeps
/// its own booked-interval list.
#[derive(Debug, Clone)]
struct Reservations {
    banks: Vec<Slots>,
    channels: Vec<Slots>,
}

/// The earliest start ≥ `arrival` of a `dur`-long gap in `slots`
/// (read-only; see [`book`]).
fn gap_at_or_after(slots: &Slots, arrival: Cycles, dur: Cycles) -> Cycles {
    let mut candidate = arrival;
    for &(start, end) in slots {
        if candidate + dur <= start {
            break;
        }
        candidate = candidate.max(end);
    }
    candidate
}

/// Books `[start, start + dur)` in `slots`, keeping them sorted; the
/// oldest reservation falls off once the list exceeds
/// [`MAX_BANK_RESERVATIONS`].
fn book(slots: &mut Slots, start: Cycles, dur: Cycles) {
    let idx = slots
        .iter()
        .position(|&(s, _)| s > start)
        .unwrap_or(slots.len());
    slots.insert(idx, (start, start + dur));
    if slots.len() > MAX_BANK_RESERVATIONS {
        slots.pop_front();
    }
}

/// Statistics accumulated by the DRAM device.
///
/// `requests` and the row-buffer counters cover *all* traffic (reads and
/// posted writes contend for the same banks), while the `queue_delay` and
/// `latency` distributions cover **demand reads only**: nobody waits on a
/// posted write, so folding its (large, deliberately deferred) delay into
/// the demand statistics would overstate what cores experience. Writes get
/// their own `write_queue_delay` distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Total requests served (reads + writes).
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (closed bank).
    pub row_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Queueing delay distribution of demand reads (start − arrival).
    pub queue_delay: LatencyStat,
    /// End-to-end device latency distribution of demand reads
    /// (done − arrival).
    pub latency: LatencyStat,
    /// Queueing delay distribution of (posted) writes.
    pub write_queue_delay: LatencyStat,
}

impl DramStats {
    /// Row-buffer hit rate over all requests.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResult {
    /// Timestamp at which the data is available.
    pub done: Cycles,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// Queueing delay suffered before service started.
    pub queue_delay: Cycles,
}

/// A banked, multi-channel DRAM device with open-row tracking.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    channel_busy_until: Vec<Cycles>,
    /// Bank/channel occupancy-interval lists — only populated in overlap
    /// mode (see the module docs).
    reservations: Option<Reservations>,
    stats: DramStats,
}

impl Dram {
    /// Builds a device from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(config.banks_per_channel > 0, "DRAM needs at least one bank");
        Dram {
            config,
            banks: vec![Bank::default(); config.total_banks()],
            channel_busy_until: vec![Cycles::ZERO; config.channels as usize],
            reservations: None,
            stats: DramStats::default(),
        }
    }

    /// Switches the device to overlap (reservation-list) bank scheduling.
    /// Used by non-blocking cores; see the module docs for why the
    /// blocking path must keep the scalar model.
    #[must_use]
    pub fn with_overlap_scheduling(mut self) -> Self {
        self.set_overlap_scheduling(true);
        self
    }

    /// Enables or disables overlap scheduling in place, clearing any
    /// reservation state.
    pub fn set_overlap_scheduling(&mut self, enabled: bool) {
        self.reservations = if enabled {
            Some(Reservations {
                banks: vec![Slots::new(); self.config.total_banks()],
                channels: vec![Slots::new(); self.config.channels as usize],
            })
        } else {
            None
        };
    }

    /// Whether overlap (reservation-list) scheduling is active.
    #[must_use]
    pub fn overlap_scheduling(&self) -> bool {
        self.reservations.is_some()
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Maps a physical address to `(channel, bank-within-channel, row)`.
    ///
    /// Channels interleave at cache-line granularity via the shared
    /// [`crate::channel::line_channel`] map (the same one the simulator
    /// routes NoC requests with); banks interleave at row granularity.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> (u32, u32, u64) {
        let line = ndp_types::LineAddr::of(addr).as_u64();
        let channel = crate::channel::line_channel(addr, self.config.channels);
        let per_channel_addr = line / u64::from(self.config.channels) * 64;
        let row = per_channel_addr / self.config.row_bytes;
        let bank = (row % u64::from(self.config.banks_per_channel)) as u32;
        (
            channel,
            bank,
            row / u64::from(self.config.banks_per_channel),
        )
    }

    /// Performs one 64 B access arriving at `now`, returning its completion
    /// time and row outcome. Mutates bank open-row and busy state. Reads
    /// and writes are timed identically (the bank is occupied either way);
    /// `rw` only selects which latency distribution records the access —
    /// see [`DramStats`].
    pub fn access(&mut self, addr: PhysAddr, rw: RwKind, now: Cycles) -> DramResult {
        let (channel, bank_in_ch, row) = self.decode(addr);
        let bank_idx = (channel * self.config.banks_per_channel + bank_in_ch) as usize;
        let bank = &mut self.banks[bank_idx];

        let outcome = match bank.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        bank.open_row = Some(row);

        let service = self.config.timing.service(outcome);
        let burst = self.config.timing.burst;
        // The bank is tied up for the access plus its data burst; the
        // channel bus only for the burst.
        let occupancy = service + burst;
        let ready = match &mut self.reservations {
            None => {
                // Scalar path (blocking cores): latest of arrival, bank
                // free time and channel free time.
                let ready = now
                    .max(bank.busy_until)
                    .max(self.channel_busy_until[channel as usize]);
                bank.busy_until = ready + occupancy;
                self.channel_busy_until[channel as usize] = ready + burst;
                ready
            }
            Some(res) => {
                // Overlap path: earliest instant at or after arrival
                // where the bank has an `occupancy`-long gap *and* the
                // channel bus a `burst`-long one — so requests contend by
                // their timestamps, not their processing order.
                let bank_slots = &res.banks[bank_idx];
                let chan_slots = &res.channels[channel as usize];
                let mut candidate = now;
                let ready = loop {
                    let bank_start = gap_at_or_after(bank_slots, candidate, occupancy);
                    let chan_start = gap_at_or_after(chan_slots, bank_start, burst);
                    if chan_start == bank_start {
                        break bank_start;
                    }
                    candidate = chan_start;
                };
                book(&mut res.banks[bank_idx], ready, occupancy);
                book(&mut res.channels[channel as usize], ready, burst);
                ready
            }
        };
        let queue_delay = ready - now;
        let done = ready + service;

        self.stats.requests += 1;
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        if rw.is_write() {
            self.stats.write_queue_delay.record(queue_delay);
        } else {
            self.stats.queue_delay.record(queue_delay);
            self.stats.latency.record(done - now);
        }

        DramResult {
            done,
            outcome,
            queue_delay,
        }
    }

    /// Clears statistics only, preserving open rows and busy state.
    pub fn clear_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Resets banks, reservations and statistics (not configuration or
    /// scheduling mode).
    pub fn reset(&mut self) {
        self.banks.fill(Bank::default());
        self.channel_busy_until.fill(Cycles::ZERO);
        if let Some(res) = &mut self.reservations {
            for slots in res.banks.iter_mut().chain(res.channels.iter_mut()) {
                slots.clear();
            }
        }
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dram {
        Dram::new(DramConfig {
            channels: 2,
            banks_per_channel: 2,
            row_bytes: 1024,
            timing: DramTiming::hbm2(),
            capacity_bytes: 1 << 30,
        })
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = small();
        let r = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        assert_eq!(r.outcome, RowOutcome::Miss);
        assert_eq!(r.queue_delay, Cycles::ZERO);
        assert_eq!(r.done, DramTiming::hbm2().row_miss);
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut d = small();
        let t = DramTiming::hbm2();
        let first = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        // Address 128 is on the same channel (even line) and same row.
        let second = d.access(PhysAddr::new(128), RwKind::Read, first.done + t.burst);
        assert_eq!(second.outcome, RowOutcome::Hit);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = small();
        // Rows interleave over banks; row r and row r+banks share a bank.
        // Channel 0, per-channel rows: addresses 0 and (2 banks * 1024 B) * 2 ch apart.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(2 * 1024 * 2 * 2); // same channel, same bank, next row
        let (ch_a, bk_a, row_a) = d.decode(a);
        let (ch_b, bk_b, row_b) = d.decode(b);
        assert_eq!((ch_a, bk_a), (ch_b, bk_b));
        assert_ne!(row_a, row_b);
        let first = d.access(a, RwKind::Read, Cycles::ZERO);
        let r = d.access(b, RwKind::Read, first.done + Cycles::new(100));
        assert_eq!(r.outcome, RowOutcome::Conflict);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = small();
        let r1 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        // Immediately issue to the same bank: must wait for busy_until.
        let r2 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        assert!(r2.queue_delay > Cycles::ZERO);
        assert!(r2.done > r1.done);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = small();
        let r1 = d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO); // channel 0
        let r2 = d.access(PhysAddr::new(64), RwKind::Read, Cycles::ZERO); // channel 1
        assert_eq!(r1.queue_delay, Cycles::ZERO);
        assert_eq!(r2.queue_delay, Cycles::ZERO);
    }

    #[test]
    fn decode_spreads_lines_over_channels() {
        let d = small();
        let (c0, _, _) = d.decode(PhysAddr::new(0));
        let (c1, _, _) = d.decode(PhysAddr::new(64));
        assert_ne!(c0, c1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small();
        d.access(PhysAddr::new(0), RwKind::Read, Cycles::ZERO);
        d.access(PhysAddr::new(64), RwKind::Read, Cycles::ZERO);
        assert_eq!(d.stats().requests, 2);
        assert_eq!(d.stats().row_misses, 2);
        assert_eq!(d.stats().row_hit_rate(), 0.0);
        d.reset();
        assert_eq!(d.stats().requests, 0);
    }

    #[test]
    fn presets_are_sane() {
        let ddr = DramConfig::ddr4_2400();
        let hbm = DramConfig::hbm2();
        assert!(hbm.channels > ddr.channels, "HBM has more channels");
        assert!(
            hbm.timing.burst < ddr.timing.burst,
            "HBM has more bandwidth"
        );
        assert_eq!(ddr.capacity_bytes, 16 << 30);
        assert_eq!(hbm.capacity_bytes, 16 << 30);
    }

    #[test]
    fn overlap_mode_slots_early_arrivals_into_gaps() {
        // Book a request far in the future, then one arriving at zero:
        // the scalar model falsely queues the early request behind the
        // late one; the reservation model does not.
        let mut scalar = small();
        let mut overlap = small().with_overlap_scheduling();
        let a = PhysAddr::new(0);
        for d in [&mut scalar, &mut overlap] {
            d.access(a, RwKind::Read, Cycles::new(10_000));
        }
        let s = scalar.access(a, RwKind::Read, Cycles::ZERO);
        let o = overlap.access(a, RwKind::Read, Cycles::ZERO);
        assert!(
            s.queue_delay > Cycles::new(9_000),
            "scalar artifact: {:?}",
            s.queue_delay
        );
        assert_eq!(o.queue_delay, Cycles::ZERO, "gap before the booking");
        // And the gap search respects existing bookings: a third request
        // arriving inside the early booking queues behind it, not the
        // far-future one.
        let third = overlap.access(a, RwKind::Read, Cycles::new(20));
        assert!(third.queue_delay > Cycles::ZERO);
        assert!(third.done < Cycles::new(10_000));
    }

    #[test]
    fn overlap_mode_matches_scalar_for_in_order_arrivals() {
        // When requests arrive in timestamp order (the blocking pattern),
        // both schedulers agree on every completion time.
        let mut scalar = small();
        let mut overlap = small().with_overlap_scheduling();
        let mut now = Cycles::ZERO;
        for i in 0..32u64 {
            let addr = PhysAddr::new((i % 7) * 64);
            let s = scalar.access(addr, RwKind::Read, now);
            let o = overlap.access(addr, RwKind::Read, now);
            assert_eq!(s.done, o.done, "request {i}");
            assert_eq!(s.queue_delay, o.queue_delay, "request {i}");
            now += Cycles::new(17);
        }
    }

    #[test]
    fn reservation_list_is_bounded_and_gap_search_fills_holes() {
        let mut slots: Slots = Slots::new();
        for i in 0..(MAX_BANK_RESERVATIONS as u64 + 10) {
            let start = gap_at_or_after(&slots, Cycles::new(i * 1000), Cycles::new(100));
            book(&mut slots, start, Cycles::new(100));
        }
        assert_eq!(slots.len(), MAX_BANK_RESERVATIONS);
        // Still sorted and non-overlapping.
        for pair in slots.iter().zip(slots.iter().skip(1)) {
            assert!(pair.0 .1 <= pair.1 .0);
        }
        // A small request fits into the hole between two bookings.
        let start = gap_at_or_after(&slots, Cycles::new(11_200), Cycles::new(100));
        assert_eq!(start, Cycles::new(11_200));
        // An oversized one skips to the end of the booked region.
        let start = gap_at_or_after(&slots, Cycles::new(11_200), Cycles::new(2_000));
        assert!(start >= slots.back().unwrap().1);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let mut cfg = DramConfig::hbm2();
        cfg.channels = 0;
        let _ = Dram::new(cfg);
    }
}
