//! Multiprogramming integration tests: the process/scheduling layer must
//! be provably inert at `procs_per_core = 1` (bit-identical reports,
//! knobs ignored), and at `procs_per_core > 1` must show the physics it
//! exists to model — context-switch costs, untagged-TLB flush penalties,
//! ASID-tagged warm-entry retention — plus regressions for the
//! measurement-accounting fixes that rode along.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn quick(cores: u32, mechanism: Mechanism) -> SimConfig {
    SimConfig::quick(SystemKind::Ndp, cores, mechanism, WorkloadId::Rnd)
}

fn digest(cfg: SimConfig) -> u64 {
    Machine::new(cfg).run().fingerprint()
}

/// The tentpole's neutrality contract: with one process per core the
/// scheduling knobs are inert — every digest is bit-identical to the
/// default configuration, across mechanisms and core counts.
#[test]
fn procs1_reports_are_invariant_under_scheduling_knobs() {
    for (cores, mechanism) in [
        (1, Mechanism::Radix),
        (2, Mechanism::NdPage),
        (2, Mechanism::HugePage),
    ] {
        let baseline = digest(quick(cores, mechanism));
        let knobbed = digest(
            quick(cores, mechanism)
                .with_procs(1)
                .with_quantum(123)
                .with_tlb_tagging(false),
        );
        assert_eq!(
            baseline, knobbed,
            "{mechanism} x{cores}: procs_per_core = 1 must ignore scheduling knobs"
        );
        let mut costed = quick(cores, mechanism);
        costed.context_switch_cost = ndp_types::Cycles::new(1_000_000);
        assert_eq!(
            baseline,
            digest(costed),
            "{mechanism} x{cores}: switch cost must never be charged at procs = 1"
        );
    }
}

#[test]
fn procs1_runs_never_switch_or_flush() {
    let r = Machine::new(quick(2, Mechanism::Radix).with_tlb_tagging(false)).run();
    assert_eq!(r.sched.context_switches, 0);
    assert_eq!(r.sched.tlb_flushes, 0);
    assert_eq!(r.sched.entries_flushed, 0);
    assert_eq!(r.sched.post_switch_walks, 0);
}

/// The acceptance criterion: two processes per core on untagged TLBs
/// (full flush per switch) walk strictly more than the same config with
/// ASID tags keeping both working sets warm.
#[test]
fn untagged_two_proc_run_walks_strictly_more_than_tagged() {
    let base = |tagging: bool| {
        quick(1, Mechanism::Radix)
            .with_procs(2)
            .with_quantum(1_000)
            .with_tlb_tagging(tagging)
    };
    let tagged = Machine::new(base(true)).run();
    let untagged = Machine::new(base(false)).run();
    assert!(
        untagged.tlb_walk_rate() > tagged.tlb_walk_rate(),
        "untagged {} must exceed tagged {}",
        untagged.tlb_walk_rate(),
        tagged.tlb_walk_rate()
    );
    assert!(
        untagged.total_cycles > tagged.total_cycles,
        "flushing costs wall-clock time"
    );
    // The cold-miss penalty is visible right after switches.
    assert!(untagged.sched.post_switch_walks > tagged.sched.post_switch_walks);
    assert!(untagged.sched.cold_penalty_per_switch() > tagged.sched.cold_penalty_per_switch());
}

#[test]
fn switch_and_flush_accounting_is_exact() {
    let mut cfg = quick(2, Mechanism::Radix)
        .with_procs(2)
        .with_quantum(1_000)
        .with_tlb_tagging(false);
    cfg.warmup_ops = 4_000;
    cfg.measure_ops = 8_000;
    let r = Machine::new(cfg).run();
    // Each core runs 12 000 ops at a 1 000-op quantum: 12 switches/core.
    assert_eq!(r.sched.context_switches, 24);
    // Measurement starts after 4 000 warmup ops, so the switches at ops
    // 5 000..=12 000 are measured: 8 per core.
    assert_eq!(r.sched.measured_context_switches, 16);
    assert_eq!(
        r.sched.tlb_flushes, 24,
        "untagged hardware flushes on every switch"
    );
    assert!(r.sched.entries_flushed > 0, "flushes drop real entries");

    let tagged = {
        let mut cfg = quick(2, Mechanism::Radix)
            .with_procs(2)
            .with_quantum(1_000)
            .with_tlb_tagging(true);
        cfg.warmup_ops = 4_000;
        cfg.measure_ops = 8_000;
        Machine::new(cfg).run()
    };
    assert_eq!(tagged.sched.context_switches, 24);
    assert_eq!(tagged.sched.tlb_flushes, 0, "ASID tags never force flushes");
    assert_eq!(tagged.sched.entries_flushed, 0);
}

#[test]
fn multiprogrammed_runs_are_deterministic_and_distinct() {
    let cfg = || {
        quick(2, Mechanism::NdPage)
            .with_procs(2)
            .with_quantum(2_000)
    };
    let a = Machine::new(cfg()).run();
    let b = Machine::new(cfg()).run();
    assert_eq!(a.fingerprint(), b.fingerprint(), "same config, same bits");
    let single = Machine::new(quick(2, Mechanism::NdPage)).run();
    assert_ne!(
        a.fingerprint(),
        single.fingerprint(),
        "multiprogramming must actually change the run"
    );
    assert_eq!(a.ops, single.ops, "per-core op budget is unchanged");
}

/// Regression (into_report aggregated core 0 only): page-table storage
/// and occupancy must cover every address space — all cores, all procs.
#[test]
fn report_aggregates_tables_across_cores_and_procs() {
    let one = Machine::new(quick(1, Mechanism::Radix)).run();
    let two = Machine::new(quick(2, Mechanism::Radix)).run();
    assert!(
        two.table_bytes > one.table_bytes * 3 / 2,
        "2 cores ~ 2x the table storage: {} vs {}",
        two.table_bytes,
        one.table_bytes
    );
    let two_procs = Machine::new(quick(1, Mechanism::Radix).with_procs(2)).run();
    assert!(
        two_procs.table_bytes > one.table_bytes * 3 / 2,
        "2 procs ~ 2x the table storage: {} vs {}",
        two_procs.table_bytes,
        one.table_bytes
    );
    // Pooled occupancy stays a rate; homogeneous cores keep it close to
    // the single-core value.
    let occ_one = one.occupancy.fig8_series().pl1;
    let occ_two = two.occupancy.fig8_series().pl1;
    assert!(occ_two > 0.0 && occ_two <= 1.0);
    assert!(
        (occ_one - occ_two).abs() < 0.05,
        "homogeneous cores, similar pooled occupancy: {occ_one} vs {occ_two}"
    );
}

/// Regression (posted writebacks polluted demand statistics): write
/// traffic is split out, and demand counters only see reads.
#[test]
fn write_traffic_is_split_from_demand() {
    let r = Machine::new(quick(1, Mechanism::Radix)).run();
    assert!(r.mem_traffic.write > 0, "GUPS stores produce writebacks");
    assert!(r.mem_traffic.data > 0);
    assert_eq!(
        r.mem_traffic.total(),
        r.mem_traffic.demand() + r.mem_traffic.write
    );
    // Ideal still does no metadata, writes or not.
    let ideal = Machine::new(quick(1, Mechanism::Ideal)).run();
    assert_eq!(ideal.mem_traffic.metadata, 0);
}

/// Regression (controller stats cleared only when the *last* core started
/// measuring, silently dropping earlier cores' measured traffic): with the
/// window opened by the first core, NDPage's bypassed PTE fetches — one
/// per measured PWC miss, nothing absorbed by caches — must all reach the
/// controller's metadata counter.
#[test]
fn controller_window_covers_every_measuring_core() {
    let r = Machine::new(quick(4, Mechanism::NdPage)).run();
    let pwc_misses: u64 = r.pwc.iter().map(|(_, hm)| hm.misses).sum();
    assert!(pwc_misses > 0);
    assert!(
        r.mem_traffic.metadata >= pwc_misses,
        "every measured bypassed PTE fetch must be counted: {} metadata < {} PWC misses",
        r.mem_traffic.metadata,
        pwc_misses
    );
}
