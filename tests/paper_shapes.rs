//! End-to-end shape tests: the paper's qualitative claims must hold on
//! quick-scale runs. (EXPERIMENTS.md records the full-scale magnitudes.)

use ndp_sim::experiment::{geomean_speedups, occupancy_figure, speedup_figure, Scale};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_types::PtLevel;
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn quick(system: SystemKind, cores: u32, m: Mechanism, w: WorkloadId) -> SimConfig {
    SimConfig::quick(system, cores, m, w)
}

/// Figs 12–14's headline: NDPage is the best real mechanism, bounded by
/// Ideal, across core counts.
#[test]
fn ndpage_is_best_real_mechanism_across_core_counts() {
    for cores in [1u32, 4] {
        let rows = speedup_figure(cores, Scale::Quick, &[WorkloadId::Rnd, WorkloadId::Bfs]);
        let gm = geomean_speedups(&rows);
        let get = |m: Mechanism| gm.iter().find(|(mm, _)| *mm == m).unwrap().1;
        assert!(
            get(Mechanism::NdPage) > 1.05,
            "{cores}-core: NDPage must beat Radix, got {}",
            get(Mechanism::NdPage)
        );
        assert!(
            get(Mechanism::NdPage) > get(Mechanism::Ech),
            "{cores}-core: NDPage must beat ECH"
        );
        assert!(
            get(Mechanism::Ideal) >= get(Mechanism::NdPage),
            "{cores}-core: Ideal bounds everything"
        );
    }
}

/// §IV-A observation 1: metadata misses the L1 far more than data, and its
/// presence inflates the data miss rate (Fig 7's 1.37x effect).
#[test]
fn metadata_is_more_irregular_than_data() {
    let radix = Machine::new(quick(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Bfs)).run();
    let ideal = Machine::new(quick(SystemKind::Ndp, 4, Mechanism::Ideal, WorkloadId::Bfs)).run();
    assert!(
        radix.l1_metadata.miss_rate() > radix.l1_data.miss_rate(),
        "metadata {} must out-miss data {}",
        radix.l1_metadata.miss_rate(),
        radix.l1_data.miss_rate()
    );
    assert!(radix.l1_metadata.miss_rate() > 0.8);
    assert!(
        radix.l1_data.miss_rate() >= ideal.l1_data.miss_rate(),
        "PTE pollution can only inflate the data miss rate"
    );
    assert!(radix.data_evicted_by_metadata > 0);
}

/// §IV-B observation 2: the bottom radix levels are (nearly) fully
/// occupied while PL3/PL4 are nearly empty.
#[test]
fn bottom_levels_are_fully_occupied() {
    // RND's single dense region fills its PL2 node completely at quick
    // scale; GEN's two regions each straddle node boundaries, so its PL2
    // rate is bounded by region granularity until the full 33 GB run
    // (see EXPERIMENTS.md for the full-scale ~98% figures).
    for (w, pl1, pl2, pl3, merged) in
        occupancy_figure(Scale::Quick, &[WorkloadId::Rnd, WorkloadId::Gen])
    {
        assert!(pl1 > 0.9, "{w}: PL1 {pl1}");
        assert!(pl3 < 0.1, "{w}: PL3 {pl3}");
        if w == WorkloadId::Rnd {
            assert!(pl2 > 0.9, "{w}: PL2 {pl2}");
            assert!(merged > 0.9, "{w}: merged {merged}");
        } else {
            assert!(pl2 > 0.4, "{w}: PL2 {pl2}");
        }
        assert!(pl1 > pl3 * 5.0, "{w}: bottom levels dominate the top");
    }
}

/// §V-C: PWC hit rates are near-perfect at PL4/PL3 and poor at PL2/PL1 —
/// the reason flattening pays off.
#[test]
fn pwc_hit_profile_matches_paper() {
    let r = Machine::new(quick(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Rnd)).run();
    let l4 = r.pwc_hit_rate(PtLevel::L4).expect("L4 exercised");
    let l3 = r.pwc_hit_rate(PtLevel::L3).expect("L3 exercised");
    let l2 = r.pwc_hit_rate(PtLevel::L2).expect("L2 exercised");
    let l1 = r.pwc_hit_rate(PtLevel::L1).expect("L1 exercised");
    assert!(l4 > 0.95, "PL4 {l4}");
    assert!(l3 > 0.9, "PL3 {l3}");
    assert!(l2 < 0.5, "PL2 {l2}");
    assert!(l1 < 0.3, "PL1 {l1}");
}

/// Fig 6a: NDP PTW latency grows with core count; the CPU's stays far
/// flatter (its caches absorb PTE traffic before DRAM).
#[test]
fn ndp_ptw_scales_with_cores_cpu_does_not() {
    let mut ndp = Vec::new();
    let mut cpu = Vec::new();
    for cores in [1u32, 4] {
        ndp.push(
            Machine::new(quick(
                SystemKind::Ndp,
                cores,
                Mechanism::Radix,
                WorkloadId::Bfs,
            ))
            .run()
            .avg_ptw_latency(),
        );
        cpu.push(
            Machine::new(quick(
                SystemKind::Cpu,
                cores,
                Mechanism::Radix,
                WorkloadId::Bfs,
            ))
            .run()
            .avg_ptw_latency(),
        );
    }
    let ndp_growth = ndp[1] / ndp[0];
    let cpu_growth = cpu[1] / cpu[0];
    assert!(ndp_growth > 1.2, "NDP PTW must grow: {ndp:?}");
    assert!(
        ndp_growth > cpu_growth,
        "NDP grows faster than CPU: {ndp_growth} vs {cpu_growth}"
    );
}

/// §VII-B: Huge Page collapses under contiguity exhaustion — forced here
/// with a small-memory override (the full-scale effect needs 8 cores x
/// 10 GB; see EXPERIMENTS.md).
#[test]
fn huge_page_degrades_when_contiguity_runs_out() {
    let mut plentiful = quick(SystemKind::Ndp, 1, Mechanism::HugePage, WorkloadId::Rnd);
    plentiful.memory_capacity_override = Some(16 << 30);
    let mut scarce = plentiful.clone();
    scarce.memory_capacity_override = Some(2 << 30); // pool < 1 GB footprint

    let rich = Machine::new(plentiful).run();
    let poor = Machine::new(scarce).run();
    assert_eq!(rich.faults.fallback, 0, "16 GB pool suffices for 1 GB");
    assert!(poor.faults.fallback > 0, "2 GB pool must exhaust");
    assert!(
        poor.total_cycles > rich.total_cycles,
        "fallbacks + compaction must cost time: {} vs {}",
        poor.total_cycles,
        rich.total_cycles
    );
}

/// The NDPage bypass eliminates metadata traffic from the L1 entirely
/// while still reaching memory (Fig 11's red path).
#[test]
fn bypass_reroutes_metadata_around_l1() {
    let ndpage = Machine::new(quick(
        SystemKind::Ndp,
        1,
        Mechanism::NdPage,
        WorkloadId::Gen,
    ))
    .run();
    assert_eq!(ndpage.l1_metadata.total(), 0);
    assert_eq!(ndpage.data_evicted_by_metadata, 0);
    assert!(ndpage.mem_traffic.metadata > 0);
    assert!(ndpage.ptw.count > 0);
}

/// ECH trades latency for bandwidth: fewer sequential rounds but more
/// metadata traffic per walk than NDPage (§VIII's contrast).
#[test]
fn ech_uses_more_metadata_bandwidth_than_ndpage() {
    let ech = Machine::new(quick(SystemKind::Ndp, 1, Mechanism::Ech, WorkloadId::Rnd)).run();
    let ndpage = Machine::new(quick(
        SystemKind::Ndp,
        1,
        Mechanism::NdPage,
        WorkloadId::Rnd,
    ))
    .run();
    let ech_per_walk = ech.mem_traffic.metadata as f64 / ech.ptw.count as f64;
    let ndpage_per_walk = ndpage.mem_traffic.metadata as f64 / ndpage.ptw.count as f64;
    assert!(
        ech_per_walk > 2.0 * ndpage_per_walk,
        "ECH {ech_per_walk} vs NDPage {ndpage_per_walk} fetches/walk"
    );
}

/// All eleven workloads run end-to-end under every mechanism without
/// violating basic report invariants.
#[test]
fn all_workloads_all_mechanisms_smoke() {
    for w in WorkloadId::ALL {
        for m in [Mechanism::Radix, Mechanism::NdPage] {
            let mut cfg = quick(SystemKind::Ndp, 1, m, w);
            cfg.warmup_ops = 1000;
            cfg.measure_ops = 2000;
            let r = Machine::new(cfg).run();
            assert_eq!(r.ops, 2000, "{w}/{m}");
            assert!(r.mem_ops > 0, "{w}/{m}");
            assert!(r.total_cycles.as_u64() > 0, "{w}/{m}");
            assert!(r.translation_fraction() <= 1.0, "{w}/{m}");
        }
    }
}
