//! Shared last-level cache integration tests.
//!
//! The PR that introduced the shared banked L3 and the per-vault buffers
//! re-routed every private miss through a new layer. Two families of
//! tests pin it:
//!
//! * **Digest invariance** — the disabled configuration (`l3_kb = 0`,
//!   `vault_buffer_kb = 0`, the default) must stay *cycle-identical* to
//!   the PR-3 tree. The golden fingerprints below are the same constants
//!   `tests/mlp_pipeline.rs` pins (produced at commit `3191fe3` and
//!   unchanged since); every one of the 12 pre-shared configurations is
//!   re-run here with the shared-layer knobs deliberately perturbed.
//! * **Shared-layer behaviour** — inclusive back-invalidation really
//!   removes private lines until refetch, exact hit/miss accounting on
//!   hand-built access sequences, and the co-runner interference shape
//!   (NDPage's bypassed PTE fetches are insensitive to shared-cache
//!   pressure, Radix's are not).

use ndp_cache::hierarchy::CacheHierarchy;
use ndp_cache::shared::{InclusionPolicy, SharedCache, SharedConfig};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_types::{AccessClass, Asid, Cycles, PhysAddr, RwKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn bench_cfg(system: SystemKind, cores: u32, m: Mechanism, w: WorkloadId) -> SimConfig {
    SimConfig::new(system, cores, m, w)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20)
}

/// Perturbs every inert shared-layer knob while leaving the layer
/// disabled — the digests must not notice.
fn with_inert_llc_knobs(mut cfg: SimConfig) -> SimConfig {
    cfg.l3_ways = 4;
    cfg.l3_banks = 2;
    cfg.l3_policy = InclusionPolicy::Exclusive;
    cfg
}

/// The ten NDP golden fingerprints from `tests/mlp_pipeline.rs` (every
/// mechanism on both contrasting workloads, 2-core NDP, the `ndpsim
/// bench` figure configurations), pre-refactor engine at `3191fe3`.
const GOLDEN_NDP: [(WorkloadId, Mechanism, u64); 10] = [
    (WorkloadId::Rnd, Mechanism::Radix, 6116369665233581051),
    (WorkloadId::Rnd, Mechanism::Ech, 11800367191099474065),
    (WorkloadId::Rnd, Mechanism::HugePage, 3097600018187868663),
    (WorkloadId::Rnd, Mechanism::NdPage, 7075727120160763403),
    (WorkloadId::Rnd, Mechanism::Ideal, 7994287721264578250),
    (WorkloadId::Bfs, Mechanism::Radix, 16706705192544354131),
    (WorkloadId::Bfs, Mechanism::Ech, 15573193775731539418),
    (WorkloadId::Bfs, Mechanism::HugePage, 16169518658622588006),
    (WorkloadId::Bfs, Mechanism::NdPage, 14852835452907560712),
    (WorkloadId::Bfs, Mechanism::Ideal, 67710112092225256),
];

/// Golden fingerprint 11: the blocking CPU system.
const GOLDEN_CPU: u64 = 10846251796690856522;

/// Golden fingerprint 12: blocking multiprogrammed untagged NDP.
const GOLDEN_MULTIPROG: u64 = 8107534158313623992;

#[test]
fn disabled_shared_llc_is_bit_identical_to_pr3_across_all_golden_configs() {
    for (workload, mechanism, want) in GOLDEN_NDP {
        let cfg = with_inert_llc_knobs(bench_cfg(SystemKind::Ndp, 2, mechanism, workload));
        assert_eq!(cfg.l3_kb, 0, "defaults must leave the shared layer off");
        assert!(!cfg.has_shared_llc());
        let report = Machine::new(cfg).run();
        assert!(report.l3.is_none() && report.vault.is_none());
        assert_eq!(
            report.fingerprint(),
            want,
            "{workload}/{mechanism}: disabled-L3 digest moved — the shared \
             layer leaked into the pre-existing timing"
        );
    }
}

#[test]
fn disabled_shared_llc_preserves_cpu_and_multiprogrammed_goldens() {
    let cpu = with_inert_llc_knobs(bench_cfg(
        SystemKind::Cpu,
        4,
        Mechanism::Radix,
        WorkloadId::Bfs,
    ));
    assert_eq!(Machine::new(cpu).run().fingerprint(), GOLDEN_CPU);

    let multi = with_inert_llc_knobs(
        SimConfig::new(SystemKind::Ndp, 2, Mechanism::NdPage, WorkloadId::Bfs)
            .with_ops(4_000, 8_000)
            .with_footprint(256 << 20)
            .with_procs(2)
            .with_quantum(2_000)
            .with_tlb_tagging(false),
    );
    assert_eq!(Machine::new(multi).run().fingerprint(), GOLDEN_MULTIPROG);
}

/// A tiny shared L3 for hand-built sequences: 4 sets x 2 ways, 2 banks,
/// 10-cycle latency, 2-cycle bank period.
fn tiny_l3(policy: InclusionPolicy) -> SharedCache {
    SharedCache::new(SharedConfig {
        name: "test-l3",
        size_bytes: 512,
        ways: 2,
        banks: 2,
        line_bytes: 64,
        latency: Cycles::new(10),
        bank_period: Cycles::new(2),
        policy,
        mshrs_per_bank: 4,
    })
}

#[test]
fn back_invalidated_line_is_never_l1_hit_until_refetched() {
    let mut l1 = CacheHierarchy::ndp();
    let mut l3 = tiny_l3(InclusionPolicy::Inclusive);
    let a = PhysAddr::new(0); // L3 set 0

    // Inclusive demand fill: the line lands in L3 and L1 and hits in L1.
    l3.fill(a, AccessClass::Data, Asid::ZERO, false);
    l1.fill(a, AccessClass::Data, false);
    assert!(l1.lookup(a, RwKind::Read, AccessClass::Data).is_hit());

    // Squeeze `a` out of the (2-way) L3 set with two more fills, playing
    // the machine's role: the inclusive eviction back-invalidates L1.
    for other in [4u64 * 64, 8 * 64] {
        if let Some(victim) = l3.fill(PhysAddr::new(other), AccessClass::Data, Asid::ZERO, false) {
            let bi = l1.back_invalidate(victim.addr);
            if bi.present {
                l3.note_back_invalidation();
            }
        }
    }
    assert!(!l3.probe(a), "a was evicted from the shared L3");
    assert_eq!(l3.stats().back_invalidations, 1);

    // The invariant: until refetched, the line can never hit in L1 —
    // not via lookup, not via probe.
    assert!(!l1.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
    assert!(!l1.lookup(a, RwKind::Write, AccessClass::Data).is_hit());

    // Refetch (miss serviced below, both levels filled): hits again.
    l3.fill(a, AccessClass::Data, Asid::ZERO, false);
    l1.fill(a, AccessClass::Data, false);
    assert!(l1.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
}

#[test]
fn back_invalidation_preserves_dirty_private_data() {
    let mut l1 = CacheHierarchy::ndp();
    let mut l3 = tiny_l3(InclusionPolicy::Inclusive);
    let a = PhysAddr::new(0);
    l3.fill(a, AccessClass::Data, Asid::ZERO, false);
    l1.fill(a, AccessClass::Data, false);
    l1.lookup(a, RwKind::Write, AccessClass::Data); // dirty the L1 copy

    l3.fill(PhysAddr::new(4 * 64), AccessClass::Data, Asid::ZERO, false);
    let victim = l3
        .fill(PhysAddr::new(8 * 64), AccessClass::Data, Asid::ZERO, false)
        .expect("set is full, someone must go");
    assert_eq!(victim.addr, a);
    assert!(!victim.dirty, "the *shared* copy was clean");
    let bi = l1.back_invalidate(victim.addr);
    assert!(
        bi.present && bi.dirty,
        "the private copy was dirty — its data must still be written back"
    );
}

#[test]
fn exact_hit_miss_accounting_on_a_hand_built_sequence() {
    let mut l3 = tiny_l3(InclusionPolicy::Inclusive);
    let a = PhysAddr::new(0); // set 0, bank 0
    let b = PhysAddr::new(64); // set 1, bank 1
    let c = PhysAddr::new(4 * 64); // set 0, bank 0

    // Cold misses: a (data), b (metadata), c (data) — all recorded.
    assert!(
        !l3.access(a, RwKind::Read, AccessClass::Data, Cycles::ZERO)
            .hit
    );
    assert!(
        !l3.access(b, RwKind::Read, AccessClass::Metadata, Cycles::new(100))
            .hit
    );
    assert!(
        !l3.access(c, RwKind::Read, AccessClass::Data, Cycles::new(200))
            .hit
    );
    l3.fill(a, AccessClass::Data, Asid(0), false);
    l3.fill(b, AccessClass::Metadata, Asid(1), false);
    l3.fill(c, AccessClass::Data, Asid(0), false);

    // Re-touch all three: hits, classes kept apart.
    assert!(
        l3.access(a, RwKind::Read, AccessClass::Data, Cycles::new(300))
            .hit
    );
    assert!(
        l3.access(b, RwKind::Read, AccessClass::Metadata, Cycles::new(400))
            .hit
    );
    assert!(
        l3.access(c, RwKind::Write, AccessClass::Data, Cycles::new(500))
            .hit
    );

    assert_eq!(l3.stats().data.hits, 2);
    assert_eq!(l3.stats().data.misses, 2);
    assert_eq!(l3.stats().metadata.hits, 1);
    assert_eq!(l3.stats().metadata.misses, 1);

    // A metadata fill into the full set 0 evicts LRU data line `a`
    // (c was just written): pollution plus no writeback for clean `a`,
    // but the dirtied `c` pushed next does write back.
    let victim = l3
        .fill(PhysAddr::new(8 * 64), AccessClass::Metadata, Asid(1), false)
        .expect("set 0 is full");
    assert_eq!(victim.addr, a);
    assert!(!victim.dirty);
    assert_eq!(l3.stats().data_evicted_by_metadata, 1);
    assert_eq!(l3.stats().writebacks, 0);
    let victim = l3
        .fill(
            PhysAddr::new(12 * 64),
            AccessClass::Metadata,
            Asid(1),
            false,
        )
        .expect("set 0 still full");
    assert_eq!(victim.addr, c, "LRU order: c was older than the new line");
    assert!(victim.dirty, "the write at t=500 dirtied c");
    assert_eq!(l3.stats().writebacks, 1);
    assert_eq!(l3.stats().data_evicted_by_metadata, 2);

    // Occupancy: set 0 holds two metadata lines for ASID 1, set 1 one
    // for ASID 1 — ASID 0 lost everything.
    assert_eq!(l3.occupancy_by_asid(), vec![(Asid(1), 3)]);
    assert_eq!(l3.live_lines(), 3);
}

#[test]
fn exact_bank_conflict_accounting() {
    let mut l3 = tiny_l3(InclusionPolicy::Inclusive);
    // Three same-instant accesses to bank 0 (sets 0): the 2-cycle port
    // serialises them — waits of 2 and 4 cycles.
    for (i, addr) in [0u64, 4 * 64, 8 * 64].into_iter().enumerate() {
        let look = l3.access(
            PhysAddr::new(addr),
            RwKind::Read,
            AccessClass::Data,
            Cycles::new(1_000),
        );
        assert_eq!(
            look.done,
            Cycles::new(1_000 + 10 + 2 * i as u64),
            "access {i} starts after {} port waits",
            i
        );
    }
    assert_eq!(l3.stats().bank_conflicts, 2);
    assert_eq!(l3.stats().bank_conflict_cycles, 2 + 4);
    // Bank 1 (set 1) is idle: no conflict there.
    let look = l3.access(
        PhysAddr::new(64),
        RwKind::Read,
        AccessClass::Data,
        Cycles::new(1_000),
    );
    assert_eq!(look.done, Cycles::new(1_010));
    assert_eq!(l3.stats().bank_conflicts, 2);
}

#[test]
fn exclusive_l3_holds_only_lines_that_left_the_private_hierarchy() {
    let mut l1 = CacheHierarchy::ndp();
    let mut l3 = tiny_l3(InclusionPolicy::Exclusive);
    let a = PhysAddr::new(0);

    // Demand fill: exclusive L3 is bypassed, only L1 holds the line.
    l1.fill(a, AccessClass::Data, false);
    assert!(!l3.probe(a));

    // Evict it from L1 (fill the 8-way set), playing the machine: the
    // outermost-level victim feeds the exclusive L3.
    for i in 1..=8u64 {
        for lv in l1.fill_collect(PhysAddr::new(i * 64 * 64), AccessClass::Data, false) {
            l3.fill(lv.victim.addr, lv.victim.class, Asid::ZERO, lv.victim.dirty);
        }
    }
    assert!(!l1.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
    assert!(l3.probe(a), "the private victim landed in the exclusive L3");

    // A later access hits the L3 and extracts the line back up: never
    // resident in both.
    let look = l3.access(a, RwKind::Read, AccessClass::Data, Cycles::new(50));
    assert!(look.hit);
    assert!(!l3.probe(a), "exclusive hit extracts");
    l1.fill(a, AccessClass::Data, false);
    assert!(l1.lookup(a, RwKind::Read, AccessClass::Data).is_hit());
    assert!(!l3.probe(a));
}

#[test]
fn interference_is_real_and_ndpage_translation_is_insensitive_to_it() {
    // The acceptance shape at machine level: under co-runner pressure on
    // a small shared L3, Radix's PTE fetches contend in (and depend on)
    // the shared cache, while NDPage's bypassed fetches never touch it.
    let cfg = |m, kb| {
        let mut c = SimConfig::quick(SystemKind::Ndp, 2, m, WorkloadId::Rnd)
            .with_procs(2)
            .with_quantum(2_000)
            .with_l3(kb);
        c.warmup_ops = 4_000;
        c.measure_ops = 10_000;
        c
    };
    let radix_small = Machine::new(cfg(Mechanism::Radix, 256)).run();
    let radix_large = Machine::new(cfg(Mechanism::Radix, 8192)).run();
    let ndpage_small = Machine::new(cfg(Mechanism::NdPage, 256)).run();
    let ndpage_large = Machine::new(cfg(Mechanism::NdPage, 8192)).run();

    let small_l3 = radix_small.l3.as_ref().unwrap();
    let large_l3 = radix_large.l3.as_ref().unwrap();
    assert!(
        small_l3.metadata.hit_rate() < large_l3.metadata.hit_rate(),
        "cache pressure must eat Radix's PTE hits: {} vs {}",
        small_l3.metadata.hit_rate(),
        large_l3.metadata.hit_rate()
    );
    assert!(
        small_l3.back_invalidations > 0,
        "inclusive pressure is real"
    );
    assert!(small_l3.bank_conflicts > 0, "port contention is real");

    for r in [&ndpage_small, &ndpage_large] {
        assert_eq!(
            r.l3.as_ref().unwrap().metadata.total(),
            0,
            "bypassed PTE fetches are insensitive to shared-cache pressure"
        );
    }

    // And the mechanisms diverge: the NDPage-vs-Radix ratio moves with
    // shared capacity because only Radix's translation depends on it.
    let gap_small = ndpage_small.speedup_over(&radix_small);
    let gap_large = ndpage_large.speedup_over(&radix_large);
    assert!(
        (gap_small - gap_large).abs() > 0.01,
        "shared-cache pressure must move the gap: {gap_small:.4} vs {gap_large:.4}"
    );
}

#[test]
fn enabled_shared_llc_digests_are_deterministic_and_distinct() {
    let cfg = || {
        SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs)
            .with_ops(1_000, 3_000)
            .with_footprint(256 << 20)
            .with_l3(512)
            .with_vault_buffer(128)
    };
    let a = Machine::new(cfg()).run();
    let b = Machine::new(cfg()).run();
    assert_eq!(a.fingerprint(), b.fingerprint(), "shared-layer determinism");
    let disabled = Machine::new(
        SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs)
            .with_ops(1_000, 3_000)
            .with_footprint(256 << 20),
    )
    .run();
    assert_ne!(
        a.fingerprint(),
        disabled.fingerprint(),
        "the shared-layer blocks are part of the enabled digest"
    );
    // Both blocks populated and internally consistent.
    for block in [a.l3.as_ref().unwrap(), a.vault.as_ref().unwrap()] {
        assert!(block.total().total() > 0);
        assert_eq!(
            block.occupancy_by_asid.iter().map(|(_, n)| n).sum::<u64>(),
            block.live_lines
        );
    }
}
