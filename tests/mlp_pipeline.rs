//! Non-blocking-pipeline integration tests.
//!
//! The PR that introduced the issue window / MSHRs / walker occupancy
//! refactored every timing path from charge-latency-in-place to
//! completion-time plumbing. Two families of tests anchor it:
//!
//! * **Digest invariance** — the blocking configuration (`mlp_window = 1`,
//!   `mshrs = 1`) must stay *cycle-identical* to the pre-refactor engine.
//!   The golden fingerprints below were produced by the engine at commit
//!   `3191fe3` (the last pre-pipeline tree) and must never move for
//!   blocking runs.
//! * **Pipeline behaviour** — windowed runs must actually overlap
//!   (faster, MLP > 1, coalesced misses, queued walks) while preserving
//!   in-order retirement, and the paper-shape NDPage-vs-Radix gap must
//!   not shrink when overlap is enabled.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn bench_cfg(system: SystemKind, cores: u32, m: Mechanism, w: WorkloadId) -> SimConfig {
    SimConfig::new(system, cores, m, w)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20)
}

/// Golden fingerprints from the pre-refactor engine (2-core NDP,
/// 4 k warmup / 8 k measured ops, 512 MB footprint) for every mechanism
/// on both contrasting workloads — the `ndpsim bench` figure engine's
/// exact configurations.
const GOLDEN: [(WorkloadId, Mechanism, u64); 10] = [
    (WorkloadId::Rnd, Mechanism::Radix, 6116369665233581051),
    (WorkloadId::Rnd, Mechanism::Ech, 11800367191099474065),
    (WorkloadId::Rnd, Mechanism::HugePage, 3097600018187868663),
    (WorkloadId::Rnd, Mechanism::NdPage, 7075727120160763403),
    (WorkloadId::Rnd, Mechanism::Ideal, 7994287721264578250),
    (WorkloadId::Bfs, Mechanism::Radix, 16706705192544354131),
    (WorkloadId::Bfs, Mechanism::Ech, 15573193775731539418),
    (WorkloadId::Bfs, Mechanism::HugePage, 16169518658622588006),
    (WorkloadId::Bfs, Mechanism::NdPage, 14852835452907560712),
    (WorkloadId::Bfs, Mechanism::Ideal, 67710112092225256),
];

#[test]
fn blocking_config_is_cycle_identical_to_pre_refactor_engine() {
    for (workload, mechanism, want) in GOLDEN {
        let cfg = bench_cfg(SystemKind::Ndp, 2, mechanism, workload);
        assert!(cfg.is_blocking(), "defaults must be the blocking core");
        let got = Machine::new(cfg).run().fingerprint();
        assert_eq!(
            got, want,
            "{workload}/{mechanism}: blocking digest moved — the pipeline \
             refactor changed pre-existing timing"
        );
    }
}

#[test]
fn blocking_cpu_system_is_cycle_identical_too() {
    let cfg = bench_cfg(SystemKind::Cpu, 4, Mechanism::Radix, WorkloadId::Bfs);
    assert_eq!(Machine::new(cfg).run().fingerprint(), 10846251796690856522);
}

#[test]
fn blocking_multiprogrammed_untagged_is_cycle_identical_too() {
    // Exercises the context-switch path (which now drains the window) in
    // its blocking degenerate form, plus the sched fingerprint block.
    let cfg = SimConfig::new(SystemKind::Ndp, 2, Mechanism::NdPage, WorkloadId::Bfs)
        .with_ops(4_000, 8_000)
        .with_footprint(256 << 20)
        .with_procs(2)
        .with_quantum(2_000)
        .with_tlb_tagging(false);
    assert_eq!(Machine::new(cfg).run().fingerprint(), 8107534158313623992);
}

#[test]
fn inert_mlp_knobs_do_not_move_blocking_digests() {
    // MSHR count and walker count are structurally inert while the
    // window is 1: a blocking core never has two requests in flight.
    let base = Machine::new(SimConfig::quick(
        SystemKind::Ndp,
        2,
        Mechanism::Radix,
        WorkloadId::Rnd,
    ))
    .run()
    .fingerprint();
    for (mshrs, walkers) in [(8u32, 1u32), (1, 4), (64, 8)] {
        let cfg = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Rnd)
            .with_mshrs(mshrs)
            .with_walkers(walkers);
        assert_eq!(
            Machine::new(cfg).run().fingerprint(),
            base,
            "mshrs={mshrs} walkers={walkers} must be inert at window 1"
        );
    }
}

fn windowed(cfg: &SimConfig, window: u32) -> SimConfig {
    let mut c = cfg.clone();
    c.mlp_window = window;
    c.mshrs_per_core = window;
    c
}

#[test]
fn windowed_runs_overlap_and_retire_in_order() {
    let base = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(2_000, 5_000)
        .with_footprint(512 << 20);
    let blocking = Machine::new(base.clone()).run();
    let w8 = Machine::new(windowed(&base, 8)).run();

    // Overlap shortens the run and achieves real MLP.
    assert!(
        w8.total_cycles < blocking.total_cycles,
        "window 8 must beat blocking: {} vs {}",
        w8.total_cycles,
        blocking.total_cycles
    );
    assert!(w8.achieved_mlp() > 2.0, "achieved {}", w8.achieved_mlp());
    assert!(w8.mlp.peak_inflight > 1 && w8.mlp.peak_inflight <= 8);

    // GUPS is read-modify-write: every store's line is in flight from
    // its load, so misses must coalesce (one fill serves both).
    assert!(w8.mlp.mshr_coalesced > 0, "RMW pairs must merge");

    // Concurrent TLB misses queue for the single hardware walker, which
    // is why windowed PTW latency *grows* — walks serialise while data
    // overlaps (the paper's asymmetry, sharpened).
    assert!(w8.mlp.walker_queued_walks > 0);
    assert!(w8.avg_ptw_latency() > blocking.avg_ptw_latency());

    // GUPS's store re-looks-up the page its load just walked: a TLB hit
    // on an entry whose walk is still in flight waits for it (the
    // translation analogue of MSHR coalescing).
    assert!(w8.mlp.tlb_hits_under_miss > 0, "RMW pairs must merge walks");
    assert_eq!(blocking.mlp.tlb_hits_under_miss, 0);

    // In-order retirement: the wall clock covers every completion, so
    // it can never undercut the per-op critical path implied by the
    // slowest op (sanity: elapsed >= inflight-latency / window).
    let elapsed = w8.avg_core_cycles * f64::from(w8.cores);
    assert!(elapsed * 8.0 >= w8.mlp.inflight_latency_cycles as f64);

    // Blocking runs report no overlap artefacts at all.
    assert_eq!(blocking.mlp.window_stall_cycles, 0);
    assert_eq!(blocking.mlp.mshr_coalesced, 0);
    assert_eq!(blocking.mlp.walker_queued_walks, 0);
    assert!(blocking.achieved_mlp() <= 1.0);
}

#[test]
fn more_mshrs_cannot_hurt_a_windowed_run() {
    // With the window at 8 but a single MSHR, misses backpressure on the
    // lone register; widening the file can only help (or tie).
    let mut narrow = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(2_000, 5_000)
        .with_footprint(512 << 20);
    narrow.mlp_window = 8;
    narrow.mshrs_per_core = 1;
    let mut wide = narrow.clone();
    wide.mshrs_per_core = 8;
    let narrow = Machine::new(narrow).run();
    let wide = Machine::new(wide).run();
    assert!(
        narrow.mlp.mshr_full_stalls > 0,
        "a 1-register file under window 8 must fill up"
    );
    assert!(
        wide.total_cycles <= narrow.total_cycles,
        "more MSHRs must not slow the run: {} vs {}",
        wide.total_cycles,
        narrow.total_cycles
    );
}

#[test]
fn windowed_gap_between_ndpage_and_radix_does_not_shrink() {
    // The acceptance shape: enabling overlap must leave NDPage's edge
    // over Radix on GUPS and BFS at least as large as in blocking mode —
    // data misses overlap, radix walks serialise on the walker.
    for workload in [WorkloadId::Rnd, WorkloadId::Bfs] {
        let cfg = |m| SimConfig::quick(SystemKind::Ndp, 2, m, workload);
        let b_radix = Machine::new(cfg(Mechanism::Radix)).run();
        let b_ndpage = Machine::new(cfg(Mechanism::NdPage)).run();
        let w_radix = Machine::new(windowed(&cfg(Mechanism::Radix), 8)).run();
        let w_ndpage = Machine::new(windowed(&cfg(Mechanism::NdPage), 8)).run();
        let blocking_gap = b_ndpage.speedup_over(&b_radix);
        let windowed_gap = w_ndpage.speedup_over(&w_radix);
        assert!(
            windowed_gap >= blocking_gap,
            "{workload}: overlap must sharpen the NDPage edge, \
             got blocking {blocking_gap:.3} vs windowed {windowed_gap:.3}"
        );
    }
}

#[test]
fn windowed_runs_are_deterministic_and_digest_distinct() {
    let base = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::NdPage, WorkloadId::Bfs)
        .with_ops(1_000, 3_000)
        .with_footprint(256 << 20);
    let a = Machine::new(windowed(&base, 8)).run();
    let b = Machine::new(windowed(&base, 8)).run();
    assert_eq!(a.fingerprint(), b.fingerprint(), "windowed determinism");
    let blocking = Machine::new(base).run();
    assert_ne!(
        a.fingerprint(),
        blocking.fingerprint(),
        "window size is part of the windowed digest"
    );
    // Windowed digests cover the MLP counters.
    assert_eq!(a.mlp_window, 8);
    assert!(a.mlp.inflight_latency_cycles > 0);
}

#[test]
fn context_switches_drain_the_window() {
    // Multiprogrammed windowed run: switches serialise the pipeline, and
    // the blocking invariants (switch accounting) keep holding.
    let mut cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Bfs)
        .with_ops(2_000, 6_000)
        .with_footprint(256 << 20)
        .with_procs(2)
        .with_quantum(500);
    cfg.mlp_window = 8;
    cfg.mshrs_per_core = 8;
    let r = Machine::new(cfg).run();
    assert!(r.sched.context_switches > 0);
    assert!(r.total_cycles.as_u64() > 0);
    assert!(r.achieved_mlp() > 1.0, "overlap survives multiprogramming");
}
