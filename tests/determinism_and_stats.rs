//! Determinism and statistics-consistency integration tests: same seed ⇒
//! bit-identical reports; different seeds ⇒ different timings; internal
//! counters must reconcile.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn cfg(seed: u64) -> SimConfig {
    SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs).with_seed(seed)
}

#[test]
fn same_seed_is_bit_identical() {
    let a = Machine::new(cfg(7)).run();
    let b = Machine::new(cfg(7)).run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.translation_cycles, b.translation_cycles);
    assert_eq!(a.ptw.sum, b.ptw.sum);
    assert_eq!(a.tlb_l1, b.tlb_l1);
    assert_eq!(a.mem_traffic.total(), b.mem_traffic.total());
    assert_eq!(a.faults, b.faults);
}

#[test]
fn different_seed_changes_timing() {
    let a = Machine::new(cfg(7)).run();
    let b = Machine::new(cfg(8)).run();
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn counters_reconcile() {
    let r = Machine::new(cfg(3)).run();

    // Every op measured is either memory or compute.
    assert!(r.mem_ops <= r.ops);

    // Every L1 TLB miss probes the L2; L2 lookups can't exceed L1 misses.
    assert_eq!(
        r.tlb_l2.total(),
        r.tlb_l1.misses,
        "L2 TLB sees exactly the L1 misses"
    );

    // Every L2 TLB miss triggers exactly one walk.
    assert_eq!(r.ptw.count, r.tlb_l2.misses);

    // Cacheable-mechanism metadata L1 lookups can't exceed total PTE
    // fetches issued by walks.
    assert!(r.l1_metadata.total() >= r.mem_traffic.metadata);

    // The wall-clock bounds the mean.
    assert!(r.total_cycles.as_f64() + 0.5 >= r.avg_core_cycles);

    // Translation cycles fit in the total.
    assert!(
        r.translation_cycles as f64 <= r.avg_core_cycles * f64::from(r.cores) + 1.0,
        "translation {} vs total {}",
        r.translation_cycles,
        r.avg_core_cycles * f64::from(r.cores)
    );
}

#[test]
fn zero_warmup_measures_from_cold() {
    let mut c = cfg(1);
    c.warmup_ops = 0;
    c.measure_ops = 5_000;
    let r = Machine::new(c).run();
    assert_eq!(r.ops, 10_000); // 2 cores x 5000
    assert!(r.ptw.count > 0);
}

#[test]
fn per_core_seeds_differ_within_a_run() {
    // With 2 cores on the same workload, their streams must diverge —
    // detectable via per-core time imbalance over a short run.
    let r = Machine::new(cfg(5)).run();
    // The slowest core defines total; the average must differ from it
    // unless both cores were identical (vanishingly unlikely with
    // distinct seeds).
    assert!(
        (r.total_cycles.as_f64() - r.avg_core_cycles).abs() > 1.0,
        "cores should not be in lockstep"
    );
}

#[test]
fn ideal_reports_are_clean() {
    let r = Machine::new(SimConfig::quick(
        SystemKind::Ndp,
        1,
        Mechanism::Ideal,
        WorkloadId::Xs,
    ))
    .run();
    assert_eq!(r.translation_cycles, 0);
    assert_eq!(r.ptw.count, 0);
    assert_eq!(r.tlb_l1.total(), 0);
    assert_eq!(r.mem_traffic.metadata, 0);
    assert!(r.mem_traffic.data > 0);
}
