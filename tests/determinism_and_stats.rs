//! Determinism and statistics-consistency integration tests: same seed ⇒
//! bit-identical reports; different seeds ⇒ different timings; internal
//! counters must reconcile.

use ndp_sim::experiment::{run, run_batch};
use ndp_sim::parallel::par_map_threads;
use ndp_sim::sweeps::pwc_size_sweep;
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn cfg(seed: u64) -> SimConfig {
    SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs).with_seed(seed)
}

#[test]
fn same_seed_is_bit_identical() {
    let a = Machine::new(cfg(7)).run();
    let b = Machine::new(cfg(7)).run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.translation_cycles, b.translation_cycles);
    assert_eq!(a.ptw.sum, b.ptw.sum);
    assert_eq!(a.tlb_l1, b.tlb_l1);
    assert_eq!(a.mem_traffic.total(), b.mem_traffic.total());
    assert_eq!(a.faults, b.faults);
}

#[test]
fn different_seed_changes_timing() {
    let a = Machine::new(cfg(7)).run();
    let b = Machine::new(cfg(8)).run();
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn counters_reconcile() {
    let r = Machine::new(cfg(3)).run();

    // Every op measured is either memory or compute.
    assert!(r.mem_ops <= r.ops);

    // Every L1 TLB miss probes the L2; L2 lookups can't exceed L1 misses.
    assert_eq!(
        r.tlb_l2.total(),
        r.tlb_l1.misses,
        "L2 TLB sees exactly the L1 misses"
    );

    // Every L2 TLB miss triggers exactly one walk.
    assert_eq!(r.ptw.count, r.tlb_l2.misses);

    // Cacheable-mechanism metadata L1 lookups can't exceed total PTE
    // fetches issued by walks.
    assert!(r.l1_metadata.total() >= r.mem_traffic.metadata);

    // The wall-clock bounds the mean.
    assert!(r.total_cycles.as_f64() + 0.5 >= r.avg_core_cycles);

    // Translation cycles fit in the total.
    assert!(
        r.translation_cycles as f64 <= r.avg_core_cycles * f64::from(r.cores) + 1.0,
        "translation {} vs total {}",
        r.translation_cycles,
        r.avg_core_cycles * f64::from(r.cores)
    );
}

#[test]
fn zero_warmup_measures_from_cold() {
    let mut c = cfg(1);
    c.warmup_ops = 0;
    c.measure_ops = 5_000;
    let r = Machine::new(c).run();
    assert_eq!(r.ops, 10_000); // 2 cores x 5000
    assert!(r.ptw.count > 0);
}

#[test]
fn per_core_seeds_differ_within_a_run() {
    // With 2 cores on the same workload, their streams must diverge —
    // detectable via per-core time imbalance over a short run.
    let r = Machine::new(cfg(5)).run();
    // The slowest core defines total; the average must differ from it
    // unless both cores were identical (vanishingly unlikely with
    // distinct seeds).
    assert!(
        (r.total_cycles.as_f64() - r.avg_core_cycles).abs() > 1.0,
        "cores should not be in lockstep"
    );
}

/// A small but heterogeneous batch: three mechanisms, two workloads, two
/// core counts — the shape `experiment.rs` fans out.
fn batch_cfgs() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for (mechanism, workload, cores, seed) in [
        (Mechanism::Radix, WorkloadId::Rnd, 1, 7),
        (Mechanism::NdPage, WorkloadId::Rnd, 2, 8),
        (Mechanism::HugePage, WorkloadId::Bfs, 1, 9),
        (Mechanism::Ech, WorkloadId::Bfs, 2, 10),
        (Mechanism::NdPage, WorkloadId::Bfs, 1, 11),
        (Mechanism::Ideal, WorkloadId::Rnd, 2, 12),
    ] {
        let mut c = SimConfig::quick(SystemKind::Ndp, cores, mechanism, workload).with_seed(seed);
        c.warmup_ops = 1_000;
        c.measure_ops = 3_000;
        c.footprint_override = Some(256 << 20);
        cfgs.push(c);
    }
    cfgs
}

#[test]
fn parallel_batch_is_bit_identical_to_serial() {
    // Serial reference: plain in-order loop, no parallel machinery.
    let serial: Vec<u64> = batch_cfgs()
        .into_iter()
        .map(|c| Machine::new(c).run().fingerprint())
        .collect();

    // The fan-out path the experiment drivers use (however many threads
    // this host offers)...
    let driver: Vec<u64> = run_batch(batch_cfgs())
        .into_iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(serial, driver, "run_batch must preserve results and order");

    // ...and an explicitly multi-threaded run, so the threaded path is
    // exercised even on single-core CI hosts.
    let threaded: Vec<u64> = par_map_threads(4, batch_cfgs(), |c| Machine::new(c).run())
        .into_iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(serial, threaded, "4 worker threads, same bits, same order");
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let base = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(1_000, 2_000)
        .with_footprint(256 << 20);
    let sizes = [8usize, 64];

    // Serial reference for every sweep point, built by hand.
    let mut serial = Vec::new();
    for &entries in &sizes {
        for mechanism in [Mechanism::Radix, Mechanism::NdPage] {
            let mut c = SimConfig::new(SystemKind::Ndp, 4, mechanism, WorkloadId::Rnd);
            c.warmup_ops = base.warmup_ops;
            c.measure_ops = base.measure_ops;
            c.footprint_override = base.footprint_override;
            c.seed = base.seed;
            c.pwc_entries = Some(entries);
            serial.push(run(c).fingerprint());
        }
    }

    let sweep = pwc_size_sweep(WorkloadId::Rnd, &sizes, &base);
    let parallel: Vec<u64> = sweep
        .iter()
        .flat_map(|p| [p.radix.fingerprint(), p.ndpage.fingerprint()])
        .collect();
    assert_eq!(
        serial, parallel,
        "sweep points must match serial runs bit for bit"
    );
    assert_eq!(sweep[0].entries, 8);
    assert_eq!(sweep[1].entries, 64);
}

/// The first configuration combining all three post-seed subsystems:
/// shared last-level resources (banked L3 + vault buffers), the
/// non-blocking pipeline (`--window 8`) and multiprogramming
/// (`--procs 2`).
fn combined_cfgs() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for (mechanism, workload, vault_kb, seed) in [
        (Mechanism::Radix, WorkloadId::Rnd, 0, 21),
        (Mechanism::NdPage, WorkloadId::Rnd, 128, 22),
        (Mechanism::Radix, WorkloadId::Bfs, 128, 23),
        (Mechanism::NdPage, WorkloadId::Bfs, 0, 24),
    ] {
        let mut c = SimConfig::quick(SystemKind::Ndp, 2, mechanism, workload)
            .with_seed(seed)
            .with_procs(2)
            .with_quantum(1_000)
            .with_l3(512)
            .with_vault_buffer(vault_kb)
            .with_window(8)
            .with_mshrs(8);
        c.warmup_ops = 1_000;
        c.measure_ops = 3_000;
        c.footprint_override = Some(256 << 20);
        cfgs.push(c);
    }
    cfgs
}

#[test]
fn parallel_driver_is_bit_identical_with_shared_llc_windowed_multiprogrammed() {
    // Serial reference first: plain in-order loop.
    let serial: Vec<u64> = combined_cfgs()
        .into_iter()
        .map(|c| Machine::new(c).run().fingerprint())
        .collect();

    // The driver fan-out path, then an explicitly 4-threaded run so the
    // threaded schedule is exercised even on single-core CI hosts.
    let driver: Vec<u64> = run_batch(combined_cfgs())
        .into_iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(
        serial, driver,
        "run_batch must stay bit-identical with L3 + window 8 + 2 procs"
    );
    let threaded: Vec<u64> = par_map_threads(4, combined_cfgs(), |c| Machine::new(c).run())
        .into_iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(serial, threaded, "4 worker threads, same bits, same order");

    // The runs genuinely combined the three subsystems.
    for report in run_batch(combined_cfgs()) {
        assert_eq!(report.mlp_window, 8);
        assert_eq!(report.procs_per_core, 2);
        let l3 = report.l3.as_ref().expect("shared L3 enabled");
        assert!(l3.total().total() > 0, "the L3 was exercised");
        assert!(report.sched.context_switches > 0);
        assert!(report.mlp.inflight_latency_cycles > 0);
    }
}

#[test]
fn ideal_reports_are_clean() {
    let r = Machine::new(SimConfig::quick(
        SystemKind::Ndp,
        1,
        Mechanism::Ideal,
        WorkloadId::Xs,
    ))
    .run();
    assert_eq!(r.translation_cycles, 0);
    assert_eq!(r.ptw.count, 0);
    assert_eq!(r.tlb_l1.total(), 0);
    assert_eq!(r.mem_traffic.metadata, 0);
    assert!(r.mem_traffic.data > 0);
}
