//! Cross-crate integration: the MMU (TLB + PWC + walker) must agree with
//! the page tables it fronts, for every design.

use ndp_mmu::tlb::TlbHierarchy;
use ndp_mmu::walker::PageTableWalker;
use ndp_types::{Asid, PageSize, Pfn, Vpn};
use ndpage::alloc::FrameAllocator;
use ndpage::Mechanism;

/// Pushing a table's translations through the TLB hierarchy and reading
/// them back must be lossless — including fractured 2 MB mappings.
#[test]
fn tlb_round_trips_every_design() {
    for mechanism in Mechanism::REAL {
        let mut alloc = FrameAllocator::new(8 << 30);
        let mut table = mechanism.build_table(&mut alloc).expect("real");
        let mut tlb = TlbHierarchy::table1();

        let vpns: Vec<Vpn> = (0..64u64).map(|i| Vpn::new(i * 104_729)).collect();
        for &vpn in &vpns {
            table.map(vpn, &mut alloc);
            let tr = table.translate(vpn).expect("mapped");
            let base = match tr.size {
                PageSize::Size4K => tr.pfn,
                PageSize::Size2M => Pfn::new(tr.pfn.as_u64() - vpn.l1_index() as u64),
            };
            tlb.fill(Asid::ZERO, vpn, base, tr.size);
            let hit = tlb.lookup(Asid::ZERO, vpn).hit.unwrap_or_else(|| {
                panic!("{mechanism}: fresh fill must hit");
            });
            assert_eq!(
                hit.pfn, tr.pfn,
                "{mechanism}: TLB returned a different frame for {vpn}"
            );
        }
    }
}

/// Walker plans must fetch a subset of the table's declared walk path and
/// never invent addresses.
#[test]
fn walker_plans_are_subsets_of_walk_paths() {
    for mechanism in Mechanism::REAL {
        let mut alloc = FrameAllocator::new(8 << 30);
        let mut table = mechanism.build_table(&mut alloc).expect("real");
        let mut walker = if mechanism.uses_pwc() {
            PageTableWalker::with_pwcs()
        } else {
            PageTableWalker::without_pwcs()
        };

        for i in 0..500u64 {
            let vpn = Vpn::new(i * 7919);
            table.map(vpn, &mut alloc);
            let path = table.walk_path(vpn).expect("mapped");
            let plan = walker.plan(Asid::ZERO, vpn, &path);
            let path_addrs: Vec<u64> = path.steps().iter().map(|s| s.addr.as_u64()).collect();
            let fetched: usize = plan.memory_fetches();
            assert!(
                fetched + plan.pwc_skips as usize == path.len(),
                "{mechanism}: every step is either fetched or PWC-skipped"
            );
            for round in &plan.rounds {
                for fetch in round {
                    assert!(
                        path_addrs.contains(&fetch.addr.as_u64()),
                        "{mechanism}: plan fetched an address outside the walk path"
                    );
                }
            }
        }
    }
}

/// The bypass policy's recognition contract: every address a walker could
/// fetch lies in an OS-marked PTE frame; no data frame is ever marked.
#[test]
fn bypass_recognition_is_sound_and_complete() {
    for mechanism in Mechanism::REAL {
        let mut alloc = FrameAllocator::new(8 << 30);
        let mut table = mechanism.build_table(&mut alloc).expect("real");
        let mut data_frames = Vec::new();
        for i in 0..2000u64 {
            let vpn = Vpn::new(i * 613);
            table.map(vpn, &mut alloc);
            data_frames.push(table.translate(vpn).expect("mapped").pfn);
        }
        for i in 0..2000u64 {
            let vpn = Vpn::new(i * 613);
            for step in table.walk_path(vpn).expect("mapped").steps() {
                assert!(
                    alloc.is_table_frame(step.addr.pfn()),
                    "{mechanism}: PTE fetch not recognised as metadata"
                );
            }
        }
        for pfn in data_frames {
            assert!(
                !alloc.is_table_frame(pfn),
                "{mechanism}: data frame wrongly marked as PTE region"
            );
        }
    }
}

/// PWC filtering must never change *what* a walk resolves — only how many
/// memory fetches it takes (paper §V-C).
#[test]
fn pwcs_preserve_translation_results() {
    let mut alloc = FrameAllocator::new(4 << 30);
    let mut table = Mechanism::NdPage.build_table(&mut alloc).expect("real");
    let mut with = PageTableWalker::with_pwcs();
    let mut without = PageTableWalker::without_pwcs();

    for i in 0..1000u64 {
        let vpn = Vpn::new(i * 313);
        table.map(vpn, &mut alloc);
        let path = table.walk_path(vpn).expect("mapped");
        let plan_with = with.plan(Asid::ZERO, vpn, &path);
        let plan_without = without.plan(Asid::ZERO, vpn, &path);
        assert!(plan_with.memory_fetches() <= plan_without.memory_fetches());
        assert_eq!(plan_without.memory_fetches(), path.len());
    }
    assert!(
        with.stats().pwc_skips > 0,
        "PWCs must actually absorb upper-level fetches"
    );
}

/// The design-space argument of §V-B, quantified: with warm PWCs, the
/// bottom-flattened table (NDPage) sends ~1 PTE fetch per walk to memory,
/// while a top-flattened variant still sends ~2 — because the step it
/// merged away was already absorbed by the near-perfect upper-level PWCs.
#[test]
fn bottom_flattening_beats_top_flattening_under_pwcs() {
    use ndpage::flat::FlattenedL2L1;
    use ndpage::flat_top::FlattenedL4L3;
    use ndpage::table::PageTable as _;

    let mut alloc = FrameAllocator::new(8 << 30);
    let mut bottom = FlattenedL2L1::new(&mut alloc);
    let mut top = FlattenedL4L3::new(&mut alloc);
    let mut walker_bottom = PageTableWalker::with_pwcs();
    let mut walker_top = PageTableWalker::with_pwcs();

    let vpns: Vec<Vpn> = (0..5_000u64).map(|i| Vpn::new(i * 613)).collect();
    for &vpn in &vpns {
        bottom.map(vpn, &mut alloc);
        top.map(vpn, &mut alloc);
    }
    let (mut fetches_bottom, mut fetches_top) = (0usize, 0usize);
    for &vpn in &vpns {
        fetches_bottom += walker_bottom
            .plan(Asid::ZERO, vpn, &bottom.walk_path(vpn).expect("mapped"))
            .memory_fetches();
        fetches_top += walker_top
            .plan(Asid::ZERO, vpn, &top.walk_path(vpn).expect("mapped"))
            .memory_fetches();
    }
    let per_walk_bottom = fetches_bottom as f64 / vpns.len() as f64;
    let per_walk_top = fetches_top as f64 / vpns.len() as f64;
    assert!(
        per_walk_bottom < 1.2,
        "bottom-flattened: ~1 fetch/walk, got {per_walk_bottom}"
    );
    assert!(
        per_walk_top > 1.6,
        "top-flattened keeps the uncacheable PL2+PL1 fetches, got {per_walk_top}"
    );
}
