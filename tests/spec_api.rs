//! Spec-API integration tests: the declarative sweep engine must be a
//! drop-in for the hand-rolled sweep loops it replaced — bit-identical
//! rows, identical JSON, order-deterministic grids — and the JSONL
//! driver must resume interrupted sweeps byte-for-byte.

use ndp_sim::parallel::par_map_threads;
use ndp_sim::shard::ShardSpec;
use ndp_sim::spec::{
    apply_knob, config_fingerprint, config_knobs, merge_sweep_jsonl, parse_jsonl, run_sweep,
    run_sweep_jsonl, run_sweep_jsonl_opts, JsonlOptions, SweepRow, SweepSpec,
};
use ndp_sim::sweeps::{mlp_sweep, pwc_size_sweep, shared_llc_sweep};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;
use proptest::prelude::*;
use std::path::PathBuf;

fn quick_base() -> SimConfig {
    SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(500, 1_500)
        .with_footprint(256 << 20)
}

/// Copies exactly the fields the sweeps' `with_base` copies.
fn with_base(mut cfg: SimConfig, base: &SimConfig) -> SimConfig {
    cfg.warmup_ops = base.warmup_ops;
    cfg.measure_ops = base.measure_ops;
    cfg.footprint_override = base.footprint_override;
    cfg.seed = base.seed;
    cfg
}

/// Runtime companion to `ndp-lint`'s static registry-completeness rule:
/// the registry must carry exactly one entry per `SimConfig` field. The
/// count is pinned so the static scanner (which reads the source) and
/// the runtime registry (which reads the table) can never disagree
/// silently — adding a `SimConfig` field without a knob trips both this
/// test and `cargo run -p ndp-lint`.
#[test]
fn knob_registry_covers_every_simconfig_field_exactly_once() {
    let cfg = SimConfig::cli_default();
    let knobs = config_knobs(&cfg);
    assert_eq!(
        knobs.len(),
        33,
        "one KNOBS entry per SimConfig field — update KNOBS (and this pin) \
         together with the struct"
    );
    let mut names: Vec<&str> = knobs.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), knobs.len(), "knob names must be unique");

    // The serialized list is a lossless image of the config: applying it
    // to a fresh default reproduces the fingerprint exactly.
    let mut rebuilt = SimConfig::cli_default();
    for (name, value) in &knobs {
        apply_knob(&mut rebuilt, name, value).expect("registry round-trip");
    }
    assert_eq!(config_fingerprint(&rebuilt), config_fingerprint(&cfg));
}

#[test]
fn legacy_pwc_sweep_is_bit_identical_to_spec_engine_and_json() {
    let base = quick_base();
    let sizes = [8usize, 64];

    // The pre-spec implementation: a hand-rolled serial grid loop.
    let legacy: Vec<_> = sizes
        .iter()
        .flat_map(|&entries| {
            [Mechanism::Radix, Mechanism::NdPage].map(|m| {
                let mut cfg = with_base(
                    SimConfig::new(SystemKind::Ndp, 4, m, WorkloadId::Rnd),
                    &base,
                );
                cfg.pwc_entries = Some(entries);
                Machine::new(cfg).run()
            })
        })
        .collect();

    // The wrapper (spec-built) must reproduce it row for row.
    let points = pwc_size_sweep(WorkloadId::Rnd, &sizes, &base);
    assert_eq!(points.len(), 2);
    let wrapper = [
        &points[0].radix,
        &points[0].ndpage,
        &points[1].radix,
        &points[1].ndpage,
    ];
    for (l, w) in legacy.iter().zip(wrapper) {
        assert_eq!(
            l.fingerprint(),
            w.fingerprint(),
            "rows must be bit-identical"
        );
    }

    // ... and serializing the legacy reports through the engine's rows
    // yields byte-identical JSON to the spec-built sweep.
    let spec = SweepSpec::new(with_base(
        SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Rnd),
        &base,
    ))
    .axis("pwc_entries", &sizes)
    .axis("mechanism", &["radix", "ndpage"]);
    let result = run_sweep(&spec).unwrap();
    let legacy_json: String = result
        .rows
        .iter()
        .zip(legacy)
        .map(|(row, report)| {
            let legacy_row = SweepRow {
                index: row.index,
                coords: row.coords.clone(),
                config_fingerprint: row.config_fingerprint,
                report,
            };
            legacy_row.to_jsonl() + "\n"
        })
        .collect();
    assert_eq!(result.to_jsonl(), legacy_json);
}

#[test]
fn legacy_mlp_sweep_is_bit_identical_to_spec_engine() {
    let base = quick_base();
    let windows = [1u32, 4];
    let legacy: Vec<_> = windows
        .iter()
        .flat_map(|&window| {
            [Mechanism::Radix, Mechanism::NdPage].map(|m| {
                let mut cfg = with_base(
                    SimConfig::new(SystemKind::Ndp, 4, m, WorkloadId::Rnd),
                    &base,
                );
                cfg.mlp_window = window;
                cfg.mshrs_per_core = window;
                cfg.walkers_per_core = base.walkers_per_core;
                Machine::new(cfg).run()
            })
        })
        .collect();
    let points = mlp_sweep(WorkloadId::Rnd, &windows, &base);
    let wrapper = [
        &points[0].radix,
        &points[0].ndpage,
        &points[1].radix,
        &points[1].ndpage,
    ];
    for (l, w) in legacy.iter().zip(wrapper) {
        assert_eq!(l.fingerprint(), w.fingerprint());
    }
}

#[test]
fn legacy_llc_sweep_is_bit_identical_to_spec_engine() {
    let base = quick_base();
    let sizes = [0u32, 512];
    let legacy: Vec<_> = sizes
        .iter()
        .flat_map(|&kb| {
            [Mechanism::Radix, Mechanism::NdPage].map(|m| {
                let cfg = with_base(
                    SimConfig::new(SystemKind::Ndp, 2, m, WorkloadId::Rnd),
                    &base,
                )
                .with_procs(2)
                .with_quantum(2_000)
                .with_l3(kb);
                Machine::new(cfg).run()
            })
        })
        .collect();
    let points = shared_llc_sweep(WorkloadId::Rnd, &sizes, &base);
    let wrapper = [
        &points[0].radix,
        &points[0].ndpage,
        &points[1].radix,
        &points[1].ndpage,
    ];
    for (l, w) in legacy.iter().zip(wrapper) {
        assert_eq!(l.fingerprint(), w.fingerprint());
    }
}

#[test]
fn heterogeneous_batches_are_bit_identical_across_thread_counts() {
    // Deliberately uneven per-task cost: different mechanisms, core
    // counts and op windows, so completion order scrambles under
    // parallel schedules.
    let cfgs: Vec<SimConfig> = vec![
        quick_base().with_ops(200, 3_000),
        SimConfig::quick(SystemKind::Ndp, 2, Mechanism::NdPage, WorkloadId::Bfs)
            .with_ops(100, 400)
            .with_footprint(256 << 20),
        SimConfig::quick(SystemKind::Cpu, 1, Mechanism::Ech, WorkloadId::Xs)
            .with_ops(300, 2_000)
            .with_footprint(256 << 20),
        quick_base().with_ops(50, 100),
        SimConfig::quick(SystemKind::Ndp, 1, Mechanism::HugePage, WorkloadId::Dlrm)
            .with_ops(200, 1_200)
            .with_footprint(256 << 20),
        quick_base().with_ops(400, 2_500).with_seed(9),
    ];
    let serial: Vec<u64> = par_map_threads(1, cfgs.clone(), |c| Machine::new(c).run())
        .iter()
        .map(ndp_sim::RunReport::fingerprint)
        .collect();
    for threads in [2usize, 8] {
        let parallel: Vec<u64> = par_map_threads(threads, cfgs.clone(), |c| Machine::new(c).run())
            .iter()
            .map(ndp_sim::RunReport::fingerprint)
            .collect();
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndp_spec_api_{}_{tag}.jsonl", std::process::id()))
}

fn tiny_grid_spec() -> SweepSpec {
    SweepSpec::new(quick_base().with_ops(200, 600))
        .named("resume_test")
        .axis("seed", &[1u64, 2])
        .axis("mechanism", &["radix", "ndpage"])
}

#[test]
fn interrupted_jsonl_sweep_resumes_byte_for_byte() {
    let spec = tiny_grid_spec();
    let path = tmp_path("resume");

    let full = run_sweep_jsonl(&spec, &path, false).unwrap();
    assert_eq!((full.grid, full.executed, full.reused), (4, 4, 0));
    let reference = std::fs::read_to_string(&path).unwrap();
    assert_eq!(reference.lines().count(), 4);

    for k in [0usize, 1, 3] {
        // Interrupt: keep only the first k rows (plus half a row of
        // garbage for k > 0, like a write cut mid-line).
        let mut truncated: String = reference
            .lines()
            .take(k)
            .map(|l| format!("{l}\n"))
            .collect();
        if k > 0 {
            truncated.push_str("{\"i\":99,\"cfg\":12");
        }
        std::fs::write(&path, truncated).unwrap();

        let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
        assert_eq!(resumed.grid, 4);
        assert_eq!(resumed.reused, k, "k = {k}");
        assert_eq!(resumed.executed, 4 - k, "only the missing points run");
        assert_eq!(resumed.digest, full.digest);
        let merged = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            merged, reference,
            "resume must merge byte-for-byte (k = {k})"
        );
    }

    // Resuming a complete file executes nothing and rewrites it
    // identically.
    let noop = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((noop.executed, noop.reused), (0, 4));
    assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_reruns_points_the_spec_edit_moved() {
    let spec = tiny_grid_spec();
    let path = tmp_path("edited");
    run_sweep_jsonl(&spec, &path, false).unwrap();

    // The second seed axis point changes (2 -> 3): the seed-1 rows stay
    // at their grid indices and are reused; the seed-3 rows re-run.
    let edited = SweepSpec::new(quick_base().with_ops(200, 600))
        .named("resume_test")
        .axis("seed", &[1u64, 3])
        .axis("mechanism", &["radix", "ndpage"]);
    let resumed = run_sweep_jsonl(&edited, &path, true).unwrap();
    // Rows 0 and 1 (seed 1) match the old file at the same indices and
    // are reused; rows 2 and 3 (seed 3, previously 2) re-run.
    assert_eq!(resumed.reused, 2);
    assert_eq!(resumed.executed, 2);
    let fresh_path = tmp_path("edited_fresh");
    let fresh = run_sweep_jsonl(&edited, &fresh_path, false).unwrap();
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        std::fs::read_to_string(&fresh_path).unwrap(),
        "a resumed edited sweep equals an uninterrupted run of the edit"
    );
    assert_eq!(resumed.digest, fresh.digest);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&fresh_path).ok();
}

#[test]
fn jsonl_driver_matches_in_memory_engine() {
    let spec = tiny_grid_spec();
    let path = tmp_path("memory");
    let summary = run_sweep_jsonl(&spec, &path, false).unwrap();
    let in_memory = run_sweep(&spec).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text, in_memory.to_jsonl(), "one serialization, two drivers");
    assert_eq!(summary.digest, in_memory.digest());
    let rows = parse_jsonl(&text);
    assert_eq!(rows.len(), 4);
    for (parsed, row) in rows.iter().zip(&in_memory.rows) {
        assert_eq!(parsed.config_fingerprint, row.config_fingerprint);
        assert_eq!(parsed.report_fingerprint, row.report.fingerprint());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_duplicate_row_is_last_wins_and_warned() {
    let spec = tiny_grid_spec();
    let path = tmp_path("dup");
    run_sweep_jsonl(&spec, &path, false).unwrap();
    let reference = std::fs::read_to_string(&path).unwrap();

    // Append a second row for grid index 1 with a tampered report
    // fingerprint: same identity (index + config fingerprint), visibly
    // different content — last-wins must pick it.
    let line1 = reference.lines().nth(1).unwrap();
    let (lead, _) = line1.rsplit_once("\"fp\":").unwrap();
    let tampered = format!("{lead}\"fp\":42}}");
    std::fs::write(&path, format!("{reference}{tampered}\n")).unwrap();

    let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (0, 4));
    assert!(
        resumed
            .warnings
            .iter()
            .any(|w| w.contains("duplicate row for grid index 1")),
        "warns about the duplicate: {:?}",
        resumed.warnings
    );
    let merged = std::fs::read_to_string(&path).unwrap();
    assert!(
        merged.lines().nth(1) == Some(tampered.as_str()),
        "the LAST duplicate wins"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_ignores_rows_not_in_the_grid_with_a_warning() {
    let spec = tiny_grid_spec();
    let path = tmp_path("stale");
    run_sweep_jsonl(&spec, &path, false).unwrap();
    let reference = std::fs::read_to_string(&path).unwrap();

    // Corrupt row 2's config fingerprint: its identity no longer
    // matches any grid point, so it is ignored (warned) and re-run.
    let mangled: String = reference
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 2 {
                let (lead, rest) = l.split_once("\"cfg\":").unwrap();
                let digits = rest.find(',').unwrap();
                format!("{lead}\"cfg\":7{}\n", &rest[digits..])
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(&path, mangled).unwrap();

    let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (1, 3));
    assert!(
        resumed
            .warnings
            .iter()
            .any(|w| w.contains("does not match the current grid")),
        "warns about the stale row: {:?}",
        resumed.warnings
    );
    assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_from_an_empty_file_is_a_clean_cold_start() {
    let spec = tiny_grid_spec();
    let path = tmp_path("empty");
    std::fs::write(&path, "").unwrap();
    let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (4, 0));
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
    assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_errors_on_mid_file_corruption_naming_the_line() {
    let spec = tiny_grid_spec();
    let path = tmp_path("corrupt");
    run_sweep_jsonl(&spec, &path, false).unwrap();
    let reference = std::fs::read_to_string(&path).unwrap();
    let mangled: String = reference
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 1 {
                "{\"i\":99,\"cf\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(&path, mangled).unwrap();
    let err = run_sweep_jsonl(&spec, &path, true).unwrap_err().to_string();
    assert!(err.contains("line 2"), "names the offending line: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_tolerates_a_torn_final_line_with_a_warning() {
    let spec = tiny_grid_spec();
    let path = tmp_path("torn_warn");
    run_sweep_jsonl(&spec, &path, false).unwrap();
    let reference = std::fs::read_to_string(&path).unwrap();
    let torn: String = reference
        .lines()
        .take(3)
        .map(|l| format!("{l}\n"))
        .chain(std::iter::once("{\"i\":3,\"cfg\":99".to_string()))
        .collect();
    std::fs::write(&path, torn).unwrap();
    let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (1, 3));
    assert!(
        resumed.warnings.iter().any(|w| w.contains("line 4")),
        "warns about the torn tail: {:?}",
        resumed.warnings
    );
    assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn shard_workers_plus_merge_equal_the_serial_bytes() {
    let spec = tiny_grid_spec();
    let serial_path = tmp_path("shard_serial");
    let full = run_sweep_jsonl(&spec, &serial_path, false).unwrap();
    let reference = std::fs::read_to_string(&serial_path).unwrap();

    let out = tmp_path("sharded");
    std::fs::remove_file(&out).ok();
    let mut executed = 0;
    for index in 0..2 {
        let shard = ShardSpec { index, count: 2 };
        let opts = JsonlOptions {
            resume: true,
            shard: Some(shard),
            fault: None,
        };
        let summary = run_sweep_jsonl_opts(&spec, &out, &opts).unwrap();
        assert_eq!(summary.grid, 2, "each stripe owns half the 4-point grid");
        executed += summary.executed;
    }
    assert_eq!(executed, 4);

    let merge = merge_sweep_jsonl(&spec, &out).unwrap();
    assert_eq!(merge.merged, 4);
    assert!(merge.missing.is_empty());
    assert_eq!(merge.digest, full.digest);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        reference,
        "merged shards must be byte-identical to the serial run"
    );
    assert!(
        ndp_sim::shard::existing_shard_files(&out).is_empty(),
        "a complete merge removes its shard files"
    );

    // A serial resume over an (incomplete) shard layout ingests the
    // shard files directly.
    std::fs::remove_file(&out).ok();
    let opts = JsonlOptions {
        resume: true,
        shard: Some(ShardSpec { index: 0, count: 2 }),
        fault: None,
    };
    run_sweep_jsonl_opts(&spec, &out, &opts).unwrap();
    let resumed = run_sweep_jsonl(&spec, &out, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (2, 2));
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
    assert!(
        ndp_sim::shard::existing_shard_files(&out).is_empty(),
        "a completing serial resume cleans up ingested shard files"
    );

    std::fs::remove_file(&serial_path).ok();
    std::fs::remove_file(&out).ok();
}

// ---------------------------------------------------------------------------
// Constraint filters on grid expansion.
// ---------------------------------------------------------------------------

#[test]
fn filters_prune_the_cross_product_with_compact_reindexing() {
    let full = SweepSpec::new(quick_base())
        .axis("pwc_entries", &[16u64, 64, 256])
        .axis("mechanism", &["radix", "ndpage"]);
    let filtered = full
        .clone()
        .filter("pwc_entries <= 64")
        .filter("mechanism != radix");

    // grid_len is the unfiltered upper bound; expansion prunes.
    assert_eq!(filtered.grid_len(), 6);
    let grid = filtered.expand().unwrap();
    assert_eq!(grid.len(), 2);

    // Kept points are re-indexed compactly in row-major order, and
    // their configs are bit-identical to the matching points of the
    // unfiltered grid — so resume keys (fingerprint) and emit order
    // stay a deterministic function of the spec.
    let dense = full.expand().unwrap();
    let want: Vec<&_> = dense
        .iter()
        .filter(|p| {
            p.config.pwc_entries.unwrap_or(0) <= 64 && p.config.mechanism == Mechanism::NdPage
        })
        .collect();
    assert_eq!(grid.len(), want.len());
    for (i, (kept, from_dense)) in grid.iter().zip(&want).enumerate() {
        assert_eq!(kept.index, i, "compact re-index, no holes");
        assert_eq!(
            config_fingerprint(&kept.config),
            config_fingerprint(&from_dense.config)
        );
        assert_eq!(kept.coords, from_dense.coords);
    }
}

#[test]
fn filters_reach_base_knobs_that_do_not_vary() {
    // `cores` is not on any axis: the clause is evaluated against the
    // base value, keeping everything or nothing.
    let base = quick_base();
    let keep = SweepSpec::new(base.clone())
        .axis("pwc_entries", &[16u64, 64])
        .filter("cores = 1");
    assert_eq!(keep.expand().unwrap().len(), 2);

    let reject = SweepSpec::new(base)
        .axis("pwc_entries", &[16u64, 64])
        .filter("cores > 1");
    let err = reject.expand().unwrap_err().to_string();
    assert!(
        err.contains("rejects every grid point"),
        "an all-rejecting filter is a named error, not an empty sweep: {err}"
    );
}

#[test]
fn filter_errors_name_the_clause_and_list_the_registry() {
    // Unknown knob: rejected with the registry list (builder path).
    let spec = SweepSpec::new(quick_base())
        .axis("pwc_entries", &[16u64])
        .filter("bogus_knob = 1");
    let err = spec.expand().unwrap_err().to_string();
    assert!(
        err.contains("bogus_knob") && err.contains("valid values") && err.contains("pwc_entries"),
        "unknown filter knob lists the registry: {err}"
    );

    // Malformed clause text also surfaces at expansion, naming it.
    let spec = SweepSpec::new(quick_base())
        .axis("pwc_entries", &[16u64])
        .filter("pwc_entries");
    assert!(spec.expand().is_err());

    // Ordering operators need numeric values.
    let spec = SweepSpec::new(quick_base())
        .axis("mechanism", &["radix", "ndpage"])
        .filter("mechanism < radix");
    let err = spec.expand().unwrap_err().to_string();
    assert!(err.contains("needs numeric"), "got: {err}");

    // FilterClause::parse rejects unknown operators by name.
    let err = ndp_sim::spec::FilterClause::parse("cores ~ 2")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains('~') && err.contains("unknown operator"),
        "{err}"
    );
}

#[test]
fn filtered_specs_load_from_json_and_stream_like_dense_ones() {
    let json = r#"{
      "name": "filtered",
      "base": {"workload": "RND", "warmup_ops": 200, "measure_ops": 500,
               "footprint": 268435456},
      "axes": [{"knob": "pwc_entries", "values": [16, 64, 256]},
               {"knob": "mechanism", "values": ["radix", "ndpage"]}],
      "filter": ["pwc_entries <= 64", "mechanism != radix"]
    }"#;
    let spec = SweepSpec::from_json(json).unwrap();
    assert_eq!(spec.filters.len(), 2);
    assert_eq!(spec.expand().unwrap().len(), 2);

    // The JSONL driver treats the filtered grid exactly like a dense
    // 2-point one: stream, resume (full reuse), shard + merge all
    // byte-identical.
    let path = tmp_path("filtered_stream");
    std::fs::remove_file(&path).ok();
    let first = run_sweep_jsonl(&spec, &path, false).unwrap();
    assert_eq!((first.grid, first.executed), (2, 2));
    let reference = std::fs::read_to_string(&path).unwrap();

    let resumed = run_sweep_jsonl(&spec, &path, true).unwrap();
    assert_eq!((resumed.executed, resumed.reused), (0, 2));
    assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);

    let out = tmp_path("filtered_shards");
    std::fs::remove_file(&out).ok();
    for index in 0..2 {
        let opts = JsonlOptions {
            resume: true,
            shard: Some(ShardSpec { index, count: 2 }),
            fault: None,
        };
        run_sweep_jsonl_opts(&spec, &out, &opts).unwrap();
    }
    let merge = merge_sweep_jsonl(&spec, &out).unwrap();
    assert_eq!(merge.merged, 2);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);

    // A bad filter type in JSON is a named error.
    let err = SweepSpec::from_json(r#"{"name": "x", "filter": "cores = 1"}"#)
        .unwrap_err()
        .to_string();
    assert!(err.contains("must be an array"), "{err}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&out).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grid expansion is order-deterministic and covers the cross
    /// product exactly once, whatever the axis shapes.
    #[test]
    fn grid_expansion_is_deterministic_and_exactly_covers(
        seeds in prop::collection::vec(0u64..1000, 1..4),
        pwc in prop::collection::vec(1u64..512, 1..4),
        windows in prop::collection::vec(1u64..16, 1..3),
    ) {
        // Distinct values per axis (duplicates would legitimately
        // produce equal grid points).
        let dedup = |mut v: Vec<u64>| { v.sort_unstable(); v.dedup(); v };
        let (seeds, pwc, windows) = (dedup(seeds), dedup(pwc), dedup(windows));

        let spec = SweepSpec::new(quick_base())
            .axis("seed", &seeds)
            .axis("pwc_entries", &pwc)
            .axis("mlp_window", &windows);
        let expect = seeds.len() * pwc.len() * windows.len();
        prop_assert_eq!(spec.grid_len(), expect);

        let grid = spec.expand().unwrap();
        prop_assert_eq!(grid.len(), expect);

        // Exactly once: every combination appears, and no fingerprint
        // repeats.
        let mut fps: Vec<u64> = grid.iter().map(|p| config_fingerprint(&p.config)).collect();
        fps.sort_unstable();
        fps.dedup();
        prop_assert_eq!(fps.len(), expect);
        for (i, s) in seeds.iter().enumerate() {
            for (j, p) in pwc.iter().enumerate() {
                for (k, w) in windows.iter().enumerate() {
                    // Row-major: first axis slowest.
                    let idx = (i * pwc.len() + j) * windows.len() + k;
                    prop_assert_eq!(grid[idx].config.seed, *s);
                    prop_assert_eq!(grid[idx].config.pwc_entries, Some(*p as usize));
                    prop_assert_eq!(grid[idx].config.mlp_window, *w as u32);
                }
            }
        }

        // Deterministic: expanding again gives identical configs in
        // identical order.
        let again = spec.expand().unwrap();
        for (a, b) in grid.iter().zip(&again) {
            prop_assert_eq!(config_fingerprint(&a.config), config_fingerprint(&b.config));
            prop_assert_eq!(&a.coords, &b.coords);
        }
    }
}
