//! Property-based integration tests over random simulator configurations:
//! no configuration may break the report invariants or the Ideal bound.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = WorkloadId> {
    prop::sample::select(WorkloadId::ALL.to_vec())
}

fn arb_mechanism() -> impl Strategy<Value = Mechanism> {
    prop::sample::select(Mechanism::ALL.to_vec())
}

fn arb_system() -> impl Strategy<Value = SystemKind> {
    prop_oneof![Just(SystemKind::Ndp), Just(SystemKind::Cpu)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (workload, mechanism, system, cores, seed) combination runs to
    /// completion with internally consistent statistics.
    #[test]
    fn random_configs_are_consistent(
        w in arb_workload(),
        m in arb_mechanism(),
        system in arb_system(),
        cores in 1u32..4,
        seed in 0u64..1000,
    ) {
        let mut cfg = SimConfig::quick(system, cores, m, w).with_seed(seed);
        cfg.warmup_ops = 500;
        cfg.measure_ops = 1500;
        cfg.footprint_override = Some(256 << 20);
        let r = Machine::new(cfg).run();

        prop_assert_eq!(r.ops, 1500 * u64::from(cores));
        prop_assert!(r.total_cycles.as_u64() > 0);
        prop_assert!(r.translation_fraction() >= 0.0 && r.translation_fraction() <= 1.0);
        prop_assert!(r.tlb_l1.hit_rate() <= 1.0);
        prop_assert!(r.l1_data.miss_rate() <= 1.0);
        prop_assert_eq!(r.ptw.count, r.tlb_l2.misses);
        if m == Mechanism::Ideal {
            prop_assert_eq!(r.translation_cycles, 0);
        }
        if m == Mechanism::NdPage {
            prop_assert_eq!(r.l1_metadata.total(), 0, "bypass leaves no L1 metadata");
        }
    }

    /// The Ideal mechanism is a lower bound on runtime for the same
    /// (workload, system, cores, seed).
    #[test]
    fn ideal_is_a_lower_bound(
        w in arb_workload(),
        m in prop::sample::select(Mechanism::REAL.to_vec()),
        seed in 0u64..100,
    ) {
        let mk = |mech| {
            let mut cfg = SimConfig::quick(SystemKind::Ndp, 1, mech, w).with_seed(seed);
            cfg.warmup_ops = 500;
            cfg.measure_ops = 1500;
            cfg.footprint_override = Some(256 << 20);
            Machine::new(cfg).run()
        };
        let real = mk(m);
        let ideal = mk(Mechanism::Ideal);
        prop_assert!(
            ideal.total_cycles <= real.total_cycles,
            "Ideal {} must not exceed {} {}",
            ideal.total_cycles, m, real.total_cycles
        );
    }
}
