//! Epoch-batched kernel invariants.
//!
//! The epoch-batching PR restructured `machine.rs::run` from "re-scan all
//! cores before every op" to "pick a core, run it for up to `epoch_ops`
//! ops while it remains the oldest". The batch limit is chosen so that
//! only the picked core's clock can move during a batch, which makes the
//! schedule — and therefore every digest — **bit-identical at any epoch
//! size**. These tests hold that bar across the knob matrix and pin
//! golden digests for the batched defaults.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;
use proptest::prelude::*;

/// A small-but-real configuration touching the interacting knobs: MLP
/// window (in-flight ops per core), process count (context switches
/// drain batches), shared L3 (cross-core timing coupling).
fn cfg(window: u32, procs: u32, l3_kb: u32) -> SimConfig {
    let mut c = SimConfig::new(SystemKind::Ndp, 2, Mechanism::NdPage, WorkloadId::Bfs)
        .with_ops(2_000, 5_000)
        .with_footprint(256 << 20)
        .with_l3(l3_kb);
    if procs > 1 {
        c = c.with_procs(procs).with_quantum(1_000);
    }
    c.mlp_window = window;
    c.mshrs_per_core = window.max(1);
    c
}

fn fp(c: SimConfig) -> u64 {
    Machine::new(c).run().fingerprint()
}

#[test]
fn epoch_batching_is_bit_identical_across_knob_matrix() {
    for window in [1u32, 8] {
        for procs in [1u32, 2] {
            for l3_kb in [0u32, 512] {
                let per_op = fp(cfg(window, procs, l3_kb).with_epoch_ops(1));
                for epoch in [3u64, 64, SimConfig::MAX_EPOCH_OPS] {
                    let batched = fp(cfg(window, procs, l3_kb).with_epoch_ops(epoch));
                    assert_eq!(
                        batched, per_op,
                        "window={window} procs={procs} l3_kb={l3_kb} \
                         epoch={epoch}: batching moved the digest"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random corners of the same matrix, including ragged epoch sizes
    /// that never divide the op counts evenly.
    #[test]
    fn any_epoch_size_matches_per_op_execution(
        window in 1u32..9,
        procs in 1u32..3,
        l3_kb in prop::sample::select(vec![0u32, 512]),
        epoch in 1u64..1025,
    ) {
        let per_op = fp(cfg(window, procs, l3_kb).with_epoch_ops(1));
        let batched = fp(cfg(window, procs, l3_kb).with_epoch_ops(epoch));
        prop_assert_eq!(batched, per_op);
    }
}

#[test]
fn epoch_ops_is_inert_at_its_default() {
    // The default must preserve the seed's behaviour exactly: a config
    // that never mentions epoch_ops digests identically to forced
    // per-op execution.
    let base = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Rnd);
    assert_eq!(base.epoch_ops, SimConfig::DEFAULT_EPOCH_OPS);
    let defaulted = fp(base.clone());
    let per_op = fp(base.with_epoch_ops(1));
    assert_eq!(defaulted, per_op, "default epoch size must be inert");
}

/// Golden digests for batched runs at the default epoch size, one per
/// matrix corner. Produced by this tree's engine; they re-pin the
/// epoch-batched kernel so a future scheduling change cannot silently
/// move timing even if it stays internally consistent.
const GOLDEN: [(u32, u32, u32, u64); 4] = [
    (1, 1, 0, 7951321719782436550),
    (8, 1, 0, 1578718316153312710),
    (1, 2, 512, 294085866865651957),
    (8, 2, 512, 16922653198480144996),
];

#[test]
fn batched_golden_digests_hold() {
    for (window, procs, l3_kb, want) in GOLDEN {
        let got = fp(cfg(window, procs, l3_kb));
        assert_eq!(
            got, want,
            "window={window} procs={procs} l3_kb={l3_kb}: golden digest moved"
        );
    }
}
