//! Large-footprint smoke: a single-core premap that crosses the PTE
//! arena's first slab (8 GiB of 4 KB mappings per table) must build and
//! run without panicking — the old fixed-capacity arena died here with
//! "PTE slab outgrew u32 offsets" — and stay digest-stable across
//! repeated runs (chained slabs must not perturb determinism).
//!
//! Ops are kept tiny: the point is the `Machine::new` setup path
//! (streamed trace generation + chunked premap) at a paper-sized
//! footprint, not the measured phase.

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

/// The arena's per-slab PTE capacity (`arena::SLAB_ENTRIES`, which is
/// crate-private; `arena.rs` has the unit-level crossing test).
const SLAB_ENTRIES: u64 = 1 << 21;

/// Just past the first slab: 8 GiB maps exactly `SLAB_ENTRIES` 4 KB
/// pages, plus 32 MiB to force a second slab.
const FOOTPRINT: u64 = (1 << 33) + (1 << 25);

fn cross_slab_config(mechanism: Mechanism) -> SimConfig {
    SimConfig::quick(SystemKind::Ndp, 1, mechanism, WorkloadId::Rnd)
        .with_ops(100, 300)
        .with_footprint(FOOTPRINT)
}

#[test]
fn premap_past_one_slab_is_stable_for_radix_and_flat() {
    for mechanism in [Mechanism::Radix, Mechanism::NdPage] {
        let first = Machine::new(cross_slab_config(mechanism)).run();
        assert!(
            first.faults.minor_4k > SLAB_ENTRIES,
            "{mechanism:?}: premap must cross the first slab ({} faults)",
            first.faults.minor_4k
        );
        assert!(first.ops > 0 && first.total_cycles.as_u64() > 0);

        let second = Machine::new(cross_slab_config(mechanism)).run();
        assert_eq!(
            first.fingerprint(),
            second.fingerprint(),
            "{mechanism:?}: slab chaining must not perturb the digest"
        );
    }
}
