#![forbid(unsafe_code)]
//! Meta-crate re-exporting the NDPage reproduction workspace crates.
pub use ndp_cache as cache;
pub use ndp_mem as mem;
pub use ndp_mmu as mmu;
pub use ndp_sim as sim;
pub use ndp_types as types;
pub use ndp_workloads as workloads;
pub use ndpage as core_;
